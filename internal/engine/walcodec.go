package engine

import (
	"fmt"

	"chimera/internal/clock"
	"chimera/internal/event"
	"chimera/internal/schema"
	"chimera/internal/types"
	"chimera/internal/wire"
)

// WAL record layout. Every record travels as one wire frame; the
// payload's first byte is the record kind. The log is logical, not
// physical: it records the operations of the transaction (DDL, block
// op streams, commit/rollback), and recovery replays them through the
// same engine code paths that ran them live — determinism of the
// engine (logical clock, deterministic OID allocation, deterministic
// interner ids) makes the replayed state bit-identical.
//
// Granularity is the block: a block's operations accumulate in an
// in-memory buffer and become one record at the block boundary
// (flushBlock), so a crash loses whole blocks, never half of one, and
// recovery always lands on a block boundary — the only instants at
// which the paper's semantics let state be observed anyway.
const (
	// recCkptMarker is always the first record after a WAL reset; it
	// carries the sequence number of the checkpoint that reset the log.
	// Recovery cross-checks it against the checkpoint it loaded: a
	// mismatch means the WAL belongs to a different checkpoint epoch
	// (a crash landed between PutCheckpoint and ResetWAL) and must be
	// ignored.
	recCkptMarker byte = iota + 1
	// recDefineClass / recDefineRule / recDropRule log DDL (outside
	// transactions).
	recDefineClass
	recDefineRule
	recDropRule
	// recBegin opens a transaction at a clock instant.
	recBegin
	// recBlock is one non-interruptible block: the op stream (events,
	// mutations, rule considerations in execution order), the clock at
	// the boundary, and the rules that newly fired there with their
	// activation instants (restored verbatim — see rules.RestoreTriggered).
	recBlock
	// recCommit / recRollback close the transaction.
	recCommit
	recRollback
)

// Block op stream entries; first byte of each op.
const (
	// opTypeDef declares an interned event-type id before its first use
	// in this log. Ids are assigned by the Event Base in arrival order,
	// so replay's interner reproduces them; the declaration lets the
	// decoder map ids without re-deriving them.
	opTypeDef byte = iota + 1
	// opEvent is one occurrence: time stamp, type id, OID.
	opEvent
	// opCreate..opGeneralize mirror the object-store mutations. opCreate
	// logs the allocated OID so replay can verify the deterministic
	// allocator reproduced it.
	opCreate
	opModify
	opDelete
	opSpecialize
	opGeneralize
	// opConsider is one rule consideration (Consider advances the
	// rule's horizon and detriggers it; the condition/action that follow
	// are ordinary ops of the same stream).
	opConsider
)

// firedMark is one newly triggered rule at a block boundary.
type firedMark struct {
	Rule string
	At   clock.Time
}

// --- record encoders ---

func encCkptMarker(dst []byte, seq uint64) []byte {
	dst = append(dst, recCkptMarker)
	return wire.AppendUvarint(dst, seq)
}

func encDefineClass(dst []byte, name, parent string, attrs []schema.Attribute) []byte {
	dst = append(dst, recDefineClass)
	dst = wire.AppendString(dst, name)
	dst = wire.AppendString(dst, parent)
	dst = wire.AppendUvarint(dst, uint64(len(attrs)))
	for _, a := range attrs {
		dst = wire.AppendString(dst, a.Name)
		dst = wire.AppendString(dst, a.Kind.String())
	}
	return dst
}

func encDefineRule(dst []byte, src string) []byte {
	return wire.AppendString(append(dst, recDefineRule), src)
}

func encDropRule(dst []byte, name string) []byte {
	return wire.AppendString(append(dst, recDropRule), name)
}

func encBegin(dst []byte, start clock.Time) []byte {
	return wire.AppendVarint(append(dst, recBegin), int64(start))
}

func encBlock(dst []byte, now clock.Time, fired []firedMark, ops []byte) []byte {
	dst = append(dst, recBlock)
	dst = wire.AppendVarint(dst, int64(now))
	dst = wire.AppendUvarint(dst, uint64(len(fired)))
	for _, f := range fired {
		dst = wire.AppendString(dst, f.Rule)
		dst = wire.AppendVarint(dst, int64(f.At))
	}
	return append(dst, ops...)
}

// --- block op encoders (append to the transaction's op buffer) ---

func encOpTypeDef(dst []byte, tid int32, ty event.Type) []byte {
	dst = append(dst, opTypeDef)
	dst = wire.AppendUvarint(dst, uint64(tid))
	dst = append(dst, byte(ty.Op))
	dst = wire.AppendString(dst, ty.Class)
	return wire.AppendString(dst, ty.Attr)
}

func encOpEvent(dst []byte, ts clock.Time, tid int32, oid types.OID) []byte {
	dst = append(dst, opEvent)
	dst = wire.AppendVarint(dst, int64(ts))
	dst = wire.AppendUvarint(dst, uint64(tid))
	return wire.AppendVarint(dst, int64(oid))
}

func encOpCreate(dst []byte, oid types.OID, class string, vals map[string]types.Value) ([]byte, error) {
	dst = append(dst, opCreate)
	dst = wire.AppendVarint(dst, int64(oid))
	dst = wire.AppendString(dst, class)
	dst = wire.AppendUvarint(dst, uint64(len(vals)))
	var err error
	for k, v := range vals {
		dst = wire.AppendString(dst, k)
		if dst, err = wire.AppendValue(dst, v); err != nil {
			return nil, err
		}
	}
	return dst, nil
}

func encOpModify(dst []byte, oid types.OID, attr string, v types.Value) ([]byte, error) {
	dst = append(dst, opModify)
	dst = wire.AppendVarint(dst, int64(oid))
	dst = wire.AppendString(dst, attr)
	return wire.AppendValue(dst, v)
}

func encOpDelete(dst []byte, oid types.OID) []byte {
	return wire.AppendVarint(append(dst, opDelete), int64(oid))
}

func encOpMigrate(dst []byte, kind byte, oid types.OID, class string) []byte {
	dst = append(dst, kind)
	dst = wire.AppendVarint(dst, int64(oid))
	return wire.AppendString(dst, class)
}

func encOpConsider(dst []byte, rule string, at clock.Time) []byte {
	dst = append(dst, opConsider)
	dst = wire.AppendString(dst, rule)
	return wire.AppendVarint(dst, int64(at))
}

// --- decoders ---

// walRecord is one decoded WAL record (fields populated per Kind).
type walRecord struct {
	Kind   byte
	Seq    uint64 // recCkptMarker
	Name   string // class, rule
	Parent string
	Attrs  []schema.Attribute
	Src    string     // rule source
	Start  clock.Time // recBegin
	Now    clock.Time // recBlock
	Fired  []firedMark
	Ops    []byte
}

func decRecord(payload []byte) (walRecord, error) {
	if len(payload) == 0 {
		return walRecord{}, fmt.Errorf("%w: empty wal record", wire.ErrCorrupt)
	}
	r := walRecord{Kind: payload[0]}
	p := payload[1:]
	var err error
	switch r.Kind {
	case recCkptMarker:
		if r.Seq, p, err = wire.Uvarint(p); err != nil {
			return walRecord{}, err
		}
	case recDefineClass:
		if r.Name, p, err = wire.String(p); err != nil {
			return walRecord{}, err
		}
		if r.Parent, p, err = wire.String(p); err != nil {
			return walRecord{}, err
		}
		var n uint64
		if n, p, err = wire.Uvarint(p); err != nil {
			return walRecord{}, err
		}
		r.Attrs = make([]schema.Attribute, n)
		for i := range r.Attrs {
			if r.Attrs[i].Name, p, err = wire.String(p); err != nil {
				return walRecord{}, err
			}
			var ks string
			if ks, p, err = wire.String(p); err != nil {
				return walRecord{}, err
			}
			if r.Attrs[i].Kind, err = types.ParseKind(ks); err != nil {
				return walRecord{}, fmt.Errorf("%w: %v", wire.ErrCorrupt, err)
			}
		}
	case recDefineRule:
		if r.Src, p, err = wire.String(p); err != nil {
			return walRecord{}, err
		}
	case recDropRule:
		if r.Name, p, err = wire.String(p); err != nil {
			return walRecord{}, err
		}
	case recBegin:
		var v int64
		if v, p, err = wire.Varint(p); err != nil {
			return walRecord{}, err
		}
		r.Start = clock.Time(v)
	case recBlock:
		var v int64
		if v, p, err = wire.Varint(p); err != nil {
			return walRecord{}, err
		}
		r.Now = clock.Time(v)
		var n uint64
		if n, p, err = wire.Uvarint(p); err != nil {
			return walRecord{}, err
		}
		r.Fired = make([]firedMark, n)
		for i := range r.Fired {
			if r.Fired[i].Rule, p, err = wire.String(p); err != nil {
				return walRecord{}, err
			}
			if v, p, err = wire.Varint(p); err != nil {
				return walRecord{}, err
			}
			r.Fired[i].At = clock.Time(v)
		}
		r.Ops = p
		p = nil
	case recCommit, recRollback:
		// no body
	default:
		return walRecord{}, fmt.Errorf("%w: unknown wal record kind %d", wire.ErrCorrupt, r.Kind)
	}
	if len(p) != 0 {
		return walRecord{}, fmt.Errorf("%w: trailing bytes in wal record %d", wire.ErrCorrupt, r.Kind)
	}
	return r, nil
}

// walOp is one decoded block op (fields populated per Kind).
type walOp struct {
	Kind  byte
	TID   int32
	Type  event.Type
	TS    clock.Time
	OID   types.OID
	Class string
	Attr  string
	Rule  string
	At    clock.Time
	Vals  map[string]types.Value
	Val   types.Value
}

// nextWalOp decodes one op off the front of the stream.
func nextWalOp(ops []byte) (walOp, []byte, error) {
	if len(ops) == 0 {
		return walOp{}, nil, fmt.Errorf("%w: empty wal op", wire.ErrCorrupt)
	}
	op := walOp{Kind: ops[0]}
	p := ops[1:]
	var err error
	var v int64
	var n uint64
	switch op.Kind {
	case opTypeDef:
		if n, p, err = wire.Uvarint(p); err != nil {
			return walOp{}, nil, err
		}
		op.TID = int32(n)
		if len(p) == 0 {
			return walOp{}, nil, wire.ErrCorrupt
		}
		op.Type.Op = event.Op(p[0])
		p = p[1:]
		if op.Type.Class, p, err = wire.String(p); err != nil {
			return walOp{}, nil, err
		}
		if op.Type.Attr, p, err = wire.String(p); err != nil {
			return walOp{}, nil, err
		}
	case opEvent:
		if v, p, err = wire.Varint(p); err != nil {
			return walOp{}, nil, err
		}
		op.TS = clock.Time(v)
		if n, p, err = wire.Uvarint(p); err != nil {
			return walOp{}, nil, err
		}
		op.TID = int32(n)
		if v, p, err = wire.Varint(p); err != nil {
			return walOp{}, nil, err
		}
		op.OID = types.OID(v)
	case opCreate:
		if v, p, err = wire.Varint(p); err != nil {
			return walOp{}, nil, err
		}
		op.OID = types.OID(v)
		if op.Class, p, err = wire.String(p); err != nil {
			return walOp{}, nil, err
		}
		if n, p, err = wire.Uvarint(p); err != nil {
			return walOp{}, nil, err
		}
		op.Vals = make(map[string]types.Value, n)
		for i := uint64(0); i < n; i++ {
			var k string
			if k, p, err = wire.String(p); err != nil {
				return walOp{}, nil, err
			}
			if op.Vals[k], p, err = wire.Value(p); err != nil {
				return walOp{}, nil, err
			}
		}
	case opModify:
		if v, p, err = wire.Varint(p); err != nil {
			return walOp{}, nil, err
		}
		op.OID = types.OID(v)
		if op.Attr, p, err = wire.String(p); err != nil {
			return walOp{}, nil, err
		}
		if op.Val, p, err = wire.Value(p); err != nil {
			return walOp{}, nil, err
		}
	case opDelete:
		if v, p, err = wire.Varint(p); err != nil {
			return walOp{}, nil, err
		}
		op.OID = types.OID(v)
	case opSpecialize, opGeneralize:
		if v, p, err = wire.Varint(p); err != nil {
			return walOp{}, nil, err
		}
		op.OID = types.OID(v)
		if op.Class, p, err = wire.String(p); err != nil {
			return walOp{}, nil, err
		}
	case opConsider:
		if op.Rule, p, err = wire.String(p); err != nil {
			return walOp{}, nil, err
		}
		if v, p, err = wire.Varint(p); err != nil {
			return walOp{}, nil, err
		}
		op.At = clock.Time(v)
	default:
		return walOp{}, nil, fmt.Errorf("%w: unknown wal op kind %d", wire.ErrCorrupt, op.Kind)
	}
	return op, p, nil
}
