package engine

import (
	"fmt"
	"testing"

	"chimera/internal/act"
	"chimera/internal/calculus"
	"chimera/internal/clock"
	"chimera/internal/cond"
	"chimera/internal/event"
	"chimera/internal/rules"
	"chimera/internal/schema"
	"chimera/internal/types"
)

// Event types are exact: creating a subclass instance emits
// create(subclass), which does NOT trigger rules listening on
// create(superclass) — events are typed by the operation's own class,
// exactly as the paper's Figure 3 logs create(order) and
// create(notFilledOrder) as distinct types.
func TestEventTypesAreExactPerClass(t *testing.T) {
	db := New(DefaultOptions())
	if err := db.DefineClass("order",
		schema.Attribute{Name: "n", Kind: types.KindInt}); err != nil {
		t.Fatal(err)
	}
	if err := db.DefineSubclass("bigOrder", "order"); err != nil {
		t.Fatal(err)
	}
	superFired, subFired := 0, 0
	db.DefineRule(rules.Def{Name: "onOrder", Event: calculus.P(event.Create("order"))},
		Body{Condition: cond.Formula{Atoms: []cond.Atom{probe{func() { superFired++ }}}}})
	db.DefineRule(rules.Def{Name: "onBig", Event: calculus.P(event.Create("bigOrder"))},
		Body{Condition: cond.Formula{Atoms: []cond.Atom{probe{func() { subFired++ }}}}})

	if err := db.Run(func(tx *Txn) error {
		_, err := tx.Create("bigOrder", nil)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if superFired != 0 {
		t.Error("create(bigOrder) triggered the create(order) rule")
	}
	if subFired != 1 {
		t.Error("create(bigOrder) rule did not fire")
	}
	// But class atoms in conditions DO see the hierarchy: order(S) binds
	// bigOrder instances.
	bound := 0
	db.DefineRule(rules.Def{Name: "countOrders", Event: calculus.P(event.Create("bigOrder"))},
		Body{Condition: cond.Formula{Atoms: []cond.Atom{
			cond.Class{Class: "order", Var: "S"},
			probe{func() { bound++ }},
		}}})
	if err := db.Run(func(tx *Txn) error {
		_, err := tx.Create("bigOrder", nil)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if bound != 1 {
		t.Errorf("hierarchy-aware class atom did not run (bound=%d)", bound)
	}
}

// Specialize/generalize emit their own event types and trigger rules.
func TestHierarchyMigrationEvents(t *testing.T) {
	db := New(DefaultOptions())
	db.DefineClass("order", schema.Attribute{Name: "n", Kind: types.KindInt})
	db.DefineSubclass("bigOrder", "order")
	fired := 0
	db.DefineRule(rules.Def{Name: "onPromote",
		Event: calculus.P(event.T(event.OpSpecialize, "bigOrder"))},
		Body{Condition: cond.Formula{Atoms: []cond.Atom{probe{func() { fired++ }}}}})
	err := db.Run(func(tx *Txn) error {
		oid, err := tx.Create("order", nil)
		if err != nil {
			return err
		}
		return tx.Specialize(oid, "bigOrder")
	})
	if err != nil {
		t.Fatal(err)
	}
	if fired != 1 {
		t.Fatalf("specialize rule fired %d times", fired)
	}
}

// Preserving consumption re-exposes earlier events at every
// consideration: a preserving rule whose window always starts at the
// transaction beginning re-binds objects it already processed (the
// documented duplicate-processing behaviour of Section 2).
func TestPreservingReBindsEarlierEvents(t *testing.T) {
	db := New(DefaultOptions())
	db.DefineClass("item", schema.Attribute{Name: "n", Kind: types.KindInt})
	var seen []types.OID
	db.DefineRule(rules.Def{Name: "p", Consumption: rules.Preserving,
		Event: calculus.P(event.Create("item"))},
		Body{Condition: cond.Formula{Atoms: []cond.Atom{
			cond.Occurred{Event: calculus.P(event.Create("item")), Var: "X"},
			recordVar{"X", &seen},
		}}})
	err := db.Run(func(tx *Txn) error {
		if _, err := tx.Create("item", nil); err != nil {
			return err
		}
		if err := tx.EndLine(); err != nil { // consideration 1: binds o1
			return err
		}
		if _, err := tx.Create("item", nil); err != nil {
			return err
		}
		return nil // commit: consideration 2 binds o1 AND o2
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != 3 {
		t.Fatalf("preserving bindings = %v, want o1 then o1,o2", seen)
	}
	if seen[0] != 1 || seen[1] != 1 || seen[2] != 2 {
		t.Fatalf("preserving bindings = %v", seen)
	}

	// The consuming twin binds each object exactly once.
	db2 := New(DefaultOptions())
	db2.DefineClass("item", schema.Attribute{Name: "n", Kind: types.KindInt})
	var seen2 []types.OID
	db2.DefineRule(rules.Def{Name: "c", Consumption: rules.Consuming,
		Event: calculus.P(event.Create("item"))},
		Body{Condition: cond.Formula{Atoms: []cond.Atom{
			cond.Occurred{Event: calculus.P(event.Create("item")), Var: "X"},
			recordVar{"X", &seen2},
		}}})
	db2.Run(func(tx *Txn) error {
		if _, err := tx.Create("item", nil); err != nil {
			return err
		}
		if err := tx.EndLine(); err != nil {
			return err
		}
		_, err := tx.Create("item", nil)
		return err
	})
	if len(seen2) != 2 || seen2[0] != 1 || seen2[1] != 2 {
		t.Fatalf("consuming bindings = %v, want [o1 o2]", seen2)
	}
}

// The engine's rule actions compose with the analysis-friendly
// statements: a rule that both modifies and deletes in sequence runs the
// statements in order over the same binding set.
func TestActionStatementOrdering(t *testing.T) {
	db := New(DefaultOptions())
	db.DefineClass("item",
		schema.Attribute{Name: "n", Kind: types.KindInt})
	db.DefineClass("tomb",
		schema.Attribute{Name: "n", Kind: types.KindInt})
	err := db.DefineRule(
		rules.Def{Name: "bury", Event: calculus.P(event.Create("item"))},
		Body{
			Condition: cond.Formula{Atoms: []cond.Atom{
				cond.Class{Class: "item", Var: "S"},
				cond.Occurred{Event: calculus.P(event.Create("item")), Var: "S"},
			}},
			Action: act.Action{Statements: []act.Statement{
				// Copy n into a tombstone, then delete the item.
				act.Create{Class: "tomb", Vals: map[string]cond.Term{
					"n": cond.Attr{Var: "S", Attr: "n"}}},
				act.Delete{Var: "S"},
			}},
		})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Run(func(tx *Txn) error {
		_, err := tx.Create("item", map[string]types.Value{"n": types.Int(7)})
		return err
	}); err != nil {
		t.Fatal(err)
	}
	items, _ := db.Store().Select("item")
	tombs, _ := db.Store().Select("tomb")
	if len(items) != 0 || len(tombs) != 1 {
		t.Fatalf("items=%v tombs=%v", items, tombs)
	}
	o, _ := db.Store().Get(tombs[0])
	if o.MustGet("n").AsInt() != 7 {
		t.Error("tombstone captured the wrong value")
	}
}

// MatchAll rules (vacuous expressions) integrate with the engine: an
// unrelated event in the same transaction triggers them; external
// signals count as events for R ≠ ∅ too.
func TestVacuousRuleWithExternalSignal(t *testing.T) {
	db := New(DefaultOptions())
	db.DefineClass("item", schema.Attribute{Name: "n", Kind: types.KindInt})
	fired := 0
	db.DefineRule(rules.Def{Name: "noItems", Coupling: rules.Deferred,
		Event: calculus.Neg(calculus.P(event.Create("item")))},
		Body{Condition: cond.Formula{Atoms: []cond.Atom{probe{func() { fired++ }}}}})
	// A transaction whose only event is an external signal.
	if err := db.Run(func(tx *Txn) error { return tx.Raise("ping") }); err != nil {
		t.Fatal(err)
	}
	if fired != 1 {
		t.Fatalf("fired = %d, want 1 (signal makes R non-empty)", fired)
	}
}

// Txn.Generalize emits generalize(super) and undoes on rollback.
func TestTxnGeneralize(t *testing.T) {
	db := New(DefaultOptions())
	db.DefineClass("order", schema.Attribute{Name: "n", Kind: types.KindInt})
	db.DefineSubclass("bigOrder", "order")
	fired := 0
	db.DefineRule(rules.Def{Name: "onDemote",
		Event: calculus.P(event.T(event.OpGeneralize, "order"))},
		Body{Condition: cond.Formula{Atoms: []cond.Atom{probe{func() { fired++ }}}}})
	err := db.Run(func(tx *Txn) error {
		oid, err := tx.Create("bigOrder", nil)
		if err != nil {
			return err
		}
		if err := tx.Generalize(oid, "order"); err != nil {
			return err
		}
		// Error paths on the same transaction.
		if err := tx.Generalize(999, "order"); err == nil {
			t.Error("generalize of missing object accepted")
		}
		if err := tx.Specialize(999, "bigOrder"); err == nil {
			t.Error("specialize of missing object accepted")
		}
		if _, err := tx.Select("ghost"); err == nil {
			t.Error("select of unknown class accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if fired != 1 {
		t.Fatalf("generalize rule fired %d times", fired)
	}
	if db.Clock().Now() == 0 {
		t.Error("clock accessor broken")
	}
}

// DB.Run propagates a commit-time rule error after rolling back, and a
// Run whose callback commits explicitly does not double-commit.
func TestRunCommitPaths(t *testing.T) {
	db := New(DefaultOptions())
	db.DefineClass("item", schema.Attribute{Name: "n", Kind: types.KindInt})
	// Callback that commits itself.
	err := db.Run(func(tx *Txn) error {
		if _, err := tx.Create("item", nil); err != nil {
			return err
		}
		return tx.Commit()
	})
	if err != nil {
		t.Fatal(err)
	}
	if db.Store().Len() != 1 {
		t.Fatal("explicit commit inside Run lost the object")
	}
	// Callback that rolls back itself: Run returns nil, nothing persists.
	if err := db.Run(func(tx *Txn) error {
		if _, err := tx.Create("item", nil); err != nil {
			return err
		}
		return tx.Rollback()
	}); err != nil {
		t.Fatal(err)
	}
	if db.Store().Len() != 1 {
		t.Fatal("rollback inside Run leaked state")
	}
}

// The tracer observes the full lifecycle in order.
func TestTracer(t *testing.T) {
	db := New(DefaultOptions())
	db.DefineClass("item", schema.Attribute{Name: "n", Kind: types.KindInt})
	db.DefineRule(rules.Def{Name: "clamp", Target: "item",
		Event: calculus.P(event.Create("item"))},
		Body{
			Condition: cond.Formula{Atoms: []cond.Atom{
				cond.Class{Class: "item", Var: "S"},
				cond.Compare{L: cond.Attr{Var: "S", Attr: "n"}, Op: cond.CmpGt,
					R: cond.Const{V: types.Int(5)}},
			}},
			Action: act.Action{Statements: []act.Statement{
				act.Modify{Class: "item", Attr: "n", Var: "S",
					Value: cond.Const{V: types.Int(5)}},
			}},
		})
	tr := &recordingTracer{}
	db.SetTracer(tr)
	if err := db.Run(func(tx *Txn) error {
		_, err := tx.Create("item", map[string]types.Value{"n": types.Int(9)})
		return err
	}); err != nil {
		t.Fatal(err)
	}
	joined := ""
	for _, l := range tr.lines {
		joined += l + "\n"
	}
	for _, want := range []string{"block:1:[clamp]", "consider:clamp:1", "execute:clamp", "end:true"} {
		if !contains(tr.lines, want) {
			t.Errorf("trace missing %q:\n%s", want, joined)
		}
	}
	// Rollback path.
	tx, _ := db.Begin()
	tx.Rollback()
	if !contains(tr.lines, "end:false") {
		t.Error("rollback not traced")
	}
	// Removing the tracer stops the stream.
	db.SetTracer(nil)
	n := len(tr.lines)
	db.Run(func(tx *Txn) error { _, err := tx.Create("item", nil); return err })
	if len(tr.lines) != n {
		t.Error("tracer still firing after removal")
	}
}

type recordingTracer struct {
	NopTracer
	lines []string
}

func (r *recordingTracer) BlockEnd(events int, triggered []string) {
	r.lines = append(r.lines, fmt.Sprintf("block:%d:%v", events, triggered))
}
func (r *recordingTracer) Considered(rule string, since, at clock.Time, bindings int) {
	r.lines = append(r.lines, fmt.Sprintf("consider:%s:%d", rule, bindings))
}
func (r *recordingTracer) Executed(rule string) {
	r.lines = append(r.lines, "execute:"+rule)
}
func (r *recordingTracer) TransactionEnd(committed bool) {
	r.lines = append(r.lines, fmt.Sprintf("end:%v", committed))
}

func contains(lines []string, want string) bool {
	for _, l := range lines {
		if l == want {
			return true
		}
	}
	return false
}
