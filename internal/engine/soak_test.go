package engine

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"chimera/internal/act"
	"chimera/internal/calculus"
	"chimera/internal/cond"
	"chimera/internal/event"
	"chimera/internal/rules"
	"chimera/internal/schema"
	"chimera/internal/types"
)

// Soak test: hundreds of random transactions against a mixed rule set,
// with structural invariants checked after every commit/rollback:
//
//   - the store's class indexes agree with the objects' own classes;
//   - no rule remains triggered after a committed transaction (every
//     triggered rule is considered before commit returns);
//   - rolled-back transactions leave the store fingerprint unchanged;
//   - the logical clock is strictly monotone across the run.
func TestSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	r := rand.New(rand.NewSource(2026))
	db := New(DefaultOptions())
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(db.DefineClass("item",
		schema.Attribute{Name: "n", Kind: types.KindInt},
		schema.Attribute{Name: "cap", Kind: types.KindInt}))
	must(db.DefineClass("order", schema.Attribute{Name: "n", Kind: types.KindInt}))
	must(db.DefineSubclass("rush", "order"))
	must(db.DefineClass("note", schema.Attribute{Name: "n", Kind: types.KindInt}))

	// A mixed rule set: clamp, a deferred composite with instance
	// negation, an instance sequence, and a targeted select listener.
	must(db.DefineRule(
		rules.Def{Name: "clamp", Target: "item", Priority: 1,
			Event: calculus.Disj(calculus.P(event.Create("item")), calculus.P(event.Modify("item", "n")))},
		Body{
			Condition: cond.Formula{Atoms: []cond.Atom{
				cond.Class{Class: "item", Var: "S"},
				cond.Compare{L: cond.Attr{Var: "S", Attr: "n"}, Op: cond.CmpGt,
					R: cond.Attr{Var: "S", Attr: "cap"}},
			}},
			Action: act.Action{Statements: []act.Statement{
				act.Modify{Class: "item", Attr: "n", Var: "S",
					Value: cond.Attr{Var: "S", Attr: "cap"}},
			}},
		}))
	must(db.DefineRule(
		rules.Def{Name: "rushless", Coupling: rules.Deferred, Priority: 2,
			Event: calculus.Conj(
				calculus.P(event.Create("order")),
				calculus.NegI(calculus.ConjI(
					calculus.P(event.Create("order")), calculus.P(event.Modify("order", "n")))))},
		Body{
			Condition: cond.Formula{Atoms: []cond.Atom{
				cond.Occurred{Event: calculus.P(event.Create("order")), Var: "X"},
			}},
			Action: act.Action{Statements: []act.Statement{
				act.Create{Class: "note", Once: true, Vals: map[string]cond.Term{
					"n": cond.Const{V: types.Int(1)}}},
			}},
		}))
	must(db.DefineRule(
		rules.Def{Name: "seq", Priority: 3,
			Event: calculus.PrecI(calculus.P(event.Create("item")), calculus.P(event.Modify("item", "n")))},
		Body{}))

	prevClock := db.Clock().Now()
	for txn := 0; txn < 300; txn++ {
		before := fingerprint(db)
		tx, err := db.Begin()
		must(err)
		willRollback := r.Intn(4) == 0
		var live []types.OID
		for _, class := range []string{"item", "order", "rush"} {
			oids, _ := db.Store().Select(class)
			live = append(live, oids...)
		}
		nOps := 1 + r.Intn(10)
		for i := 0; i < nOps; i++ {
			switch r.Intn(7) {
			case 0, 1:
				class := []string{"item", "order", "rush"}[r.Intn(3)]
				vals := map[string]types.Value{"n": types.Int(int64(r.Intn(200)))}
				if class == "item" {
					vals["cap"] = types.Int(100)
				}
				oid, err := tx.Create(class, vals)
				must(err)
				live = append(live, oid)
			case 2:
				if len(live) > 0 {
					oid := live[r.Intn(len(live))]
					if _, ok := tx.Get(oid); ok {
						must(tx.Modify(oid, "n", types.Int(int64(r.Intn(200)))))
					}
				}
			case 3:
				if len(live) > 0 {
					idx := r.Intn(len(live))
					oid := live[idx]
					if _, ok := tx.Get(oid); ok {
						must(tx.Delete(oid))
					}
					live = append(live[:idx], live[idx+1:]...)
				}
			case 4:
				if len(live) > 0 {
					oid := live[r.Intn(len(live))]
					if o, ok := tx.Get(oid); ok && o.Class().Name() == "order" {
						must(tx.Specialize(oid, "rush"))
					}
				}
			case 5:
				must(tx.Raise(fmt.Sprintf("sig%d", r.Intn(2))))
			case 6:
				if err := tx.EndLine(); err != nil {
					t.Fatal(err)
				}
			}
		}
		if willRollback {
			must(tx.Rollback())
			if after := fingerprint(db); after != before {
				t.Fatalf("txn %d: rollback changed state:\n--- before\n%s--- after\n%s",
					txn, before, after)
			}
		} else {
			if err := tx.Commit(); err != nil {
				if errors.Is(err, ErrRuleLimit) {
					t.Fatalf("txn %d: unexpected rule-limit hit", txn)
				}
				t.Fatal(err)
			}
			if names := db.Support().Triggered(nil); len(names) != 0 {
				t.Fatalf("txn %d: rules still triggered after commit: %v", txn, names)
			}
			// Clamp invariant: no item exceeds its cap after commit.
			oids, _ := db.Store().Select("item")
			for _, oid := range oids {
				o, _ := db.Store().Get(oid)
				if o.MustGet("n").AsInt() > o.MustGet("cap").AsInt() {
					t.Fatalf("txn %d: clamp invariant violated on %s", txn, oid)
				}
			}
		}
		// Class-index consistency.
		for _, class := range []string{"item", "order", "rush", "note"} {
			oids, _ := db.Store().Select(class)
			cls := db.Schema().MustClass(class)
			for _, oid := range oids {
				o, ok := db.Store().Get(oid)
				if !ok || !o.Class().IsA(cls) {
					t.Fatalf("txn %d: class index corrupt for %s/%s", txn, class, oid)
				}
			}
		}
		if now := db.Clock().Now(); now < prevClock {
			t.Fatalf("txn %d: clock went backwards", txn)
		} else {
			prevClock = now
		}
	}
	if db.Stats().RuleExecutions == 0 {
		t.Fatal("soak run never executed a rule")
	}
}
