package engine

import (
	"errors"
	"testing"

	"chimera/internal/act"
	"chimera/internal/calculus"
	"chimera/internal/cond"
	"chimera/internal/event"
	"chimera/internal/rules"
	"chimera/internal/schema"
	"chimera/internal/types"
)

func stockDB(t *testing.T) *DB {
	t.Helper()
	db := New(DefaultOptions())
	if err := db.DefineClass("stock",
		schema.Attribute{Name: "name", Kind: types.KindString},
		schema.Attribute{Name: "quantity", Kind: types.KindInt},
		schema.Attribute{Name: "maxquantity", Kind: types.KindInt},
		schema.Attribute{Name: "minquantity", Kind: types.KindInt},
	); err != nil {
		t.Fatal(err)
	}
	if err := db.DefineClass("show",
		schema.Attribute{Name: "item", Kind: types.KindString},
		schema.Attribute{Name: "quantity", Kind: types.KindInt},
	); err != nil {
		t.Fatal(err)
	}
	return db
}

// checkStockQty is the paper's Section 2 example rule:
//
//	define immediate checkStockQty for stock
//	events create
//	condition stock(S), occurred(create, S), S.quantity > S.maxquantity
//	action modify(stock.quantity, S, S.maxquantity)
func defineCheckStockQty(t *testing.T, db *DB) {
	t.Helper()
	err := db.DefineRule(
		rules.Def{
			Name:     "checkStockQty",
			Target:   "stock",
			Event:    calculus.P(event.Create("stock")),
			Coupling: rules.Immediate,
		},
		Body{
			Condition: cond.Formula{Atoms: []cond.Atom{
				cond.Class{Class: "stock", Var: "S"},
				cond.Occurred{Event: calculus.P(event.Create("stock")), Var: "S"},
				cond.Compare{
					L:  cond.Attr{Var: "S", Attr: "quantity"},
					Op: cond.CmpGt,
					R:  cond.Attr{Var: "S", Attr: "maxquantity"},
				},
			}},
			Action: act.Action{Statements: []act.Statement{
				act.Modify{Class: "stock", Attr: "quantity", Var: "S",
					Value: cond.Attr{Var: "S", Attr: "maxquantity"}},
			}},
		})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCheckStockQtyRule(t *testing.T) {
	db := stockDB(t)
	defineCheckStockQty(t, db)

	var over, under types.OID
	err := db.Run(func(tx *Txn) error {
		var err error
		over, err = tx.Create("stock", map[string]types.Value{
			"name": types.String_("bolts"), "quantity": types.Int(100), "maxquantity": types.Int(40),
		})
		if err != nil {
			return err
		}
		under, err = tx.Create("stock", map[string]types.Value{
			"name": types.String_("nuts"), "quantity": types.Int(10), "maxquantity": types.Int(40),
		})
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	o, _ := db.Store().Get(over)
	if v := o.MustGet("quantity"); v.AsInt() != 40 {
		t.Errorf("over-quantity object clamped to %v, want 40", v)
	}
	u, _ := db.Store().Get(under)
	if v := u.MustGet("quantity"); v.AsInt() != 10 {
		t.Errorf("under-quantity object changed to %v, want 10", v)
	}
	if db.Stats().RuleExecutions != 1 {
		t.Errorf("RuleExecutions = %d, want 1 (set-oriented execution)", db.Stats().RuleExecutions)
	}
}

// The set-oriented semantics: one execution processes every pending
// object together (the paper: "all the objects created and not checked
// yet by the rule are processed together in a single rule execution").
func TestSetOrientedSingleExecution(t *testing.T) {
	db := stockDB(t)
	defineCheckStockQty(t, db)
	err := db.Run(func(tx *Txn) error {
		for i := 0; i < 5; i++ {
			if _, err := tx.Create("stock", map[string]types.Value{
				"quantity": types.Int(100 + int64(i)), "maxquantity": types.Int(7),
			}); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if db.Stats().RuleExecutions != 1 {
		t.Fatalf("RuleExecutions = %d, want 1", db.Stats().RuleExecutions)
	}
	oids, _ := db.Store().Select("stock")
	for _, oid := range oids {
		o, _ := db.Store().Get(oid)
		if o.MustGet("quantity").AsInt() != 7 {
			t.Errorf("object %s not clamped", oid)
		}
	}
}

// EndLine boundaries: an immediate rule runs after its line; objects
// created on a later line are processed by a later consideration
// (consuming mode).
func TestLineBoundariesAndConsumption(t *testing.T) {
	db := stockDB(t)
	defineCheckStockQty(t, db)
	tx, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	o1, _ := tx.Create("stock", map[string]types.Value{
		"quantity": types.Int(50), "maxquantity": types.Int(10)})
	if err := tx.EndLine(); err != nil {
		t.Fatal(err)
	}
	if o, _ := tx.Get(o1); o.MustGet("quantity").AsInt() != 10 {
		t.Fatal("rule did not run at line end")
	}
	o2, _ := tx.Create("stock", map[string]types.Value{
		"quantity": types.Int(60), "maxquantity": types.Int(20)})
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if o, _ := db.Store().Get(o2); o.MustGet("quantity").AsInt() != 20 {
		t.Fatal("rule did not run at commit for the second line")
	}
	if db.Stats().RuleExecutions != 2 {
		t.Errorf("RuleExecutions = %d, want 2", db.Stats().RuleExecutions)
	}
}

// Deferred rules wait for commit.
func TestDeferredCoupling(t *testing.T) {
	db := stockDB(t)
	err := db.DefineRule(
		rules.Def{Name: "auditAtCommit", Coupling: rules.Deferred,
			Event: calculus.P(event.Create("stock"))},
		Body{
			Condition: cond.Formula{Atoms: []cond.Atom{
				cond.Occurred{Event: calculus.P(event.Create("stock")), Var: "S"},
			}},
			Action: act.Action{Statements: []act.Statement{
				act.Create{Class: "show", Once: true, Vals: map[string]cond.Term{
					"item": cond.Const{V: types.String_("audit")},
				}},
			}},
		})
	if err != nil {
		t.Fatal(err)
	}
	tx, _ := db.Begin()
	tx.Create("stock", map[string]types.Value{"quantity": types.Int(1)})
	if err := tx.EndLine(); err != nil {
		t.Fatal(err)
	}
	if got, _ := db.Store().Select("show"); len(got) != 0 {
		t.Fatal("deferred rule ran before commit")
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if got, _ := db.Store().Select("show"); len(got) != 1 {
		t.Fatal("deferred rule did not run at commit")
	}
}

// Rule cascading: rule A's action triggers rule B; priorities order the
// considerations.
func TestCascadeAndPriority(t *testing.T) {
	db := stockDB(t)
	var order []string
	mkRule := func(name string, prio int, evt calculus.Expr, action act.Statement) {
		t.Helper()
		err := db.DefineRule(
			rules.Def{Name: name, Priority: prio, Event: evt},
			Body{
				Condition: cond.Formula{Atoms: []cond.Atom{
					probe{func() { order = append(order, name) }},
				}},
				Action: act.Action{Statements: []act.Statement{action}},
			})
		if err != nil {
			t.Fatal(err)
		}
	}
	// higher (priority 1) fires on create(stock) and cascades by creating
	// a show object.
	mkRule("higher", 1, calculus.P(event.Create("stock")),
		act.Create{Class: "show", Once: true, Vals: map[string]cond.Term{}})
	// lower (priority 2) also fires on create(stock), after higher.
	db.DefineRule(rules.Def{Name: "lower", Priority: 2, Event: calculus.P(event.Create("stock"))},
		Body{Condition: cond.Formula{Atoms: []cond.Atom{probe{func() { order = append(order, "lower") }}}}})
	// onShow (priority 0) fires on the cascade-created show object and
	// must cut ahead of lower.
	db.DefineRule(rules.Def{Name: "onShow", Priority: 0, Event: calculus.P(event.Create("show"))},
		Body{Condition: cond.Formula{Atoms: []cond.Atom{probe{func() { order = append(order, "onShow") }}}}})

	tx, _ := db.Begin()
	tx.Create("stock", map[string]types.Value{"quantity": types.Int(5)})
	if err := tx.EndLine(); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	want := []string{"higher", "onShow", "lower"}
	if len(order) != len(want) {
		t.Fatalf("consideration order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("consideration order = %v, want %v", order, want)
		}
	}
}

// probe is a condition atom recording that the rule was considered; it
// always succeeds with the incoming bindings.
type probe struct{ fn func() }

func (p probe) Eval(_ *cond.Ctx, in []cond.Binding) ([]cond.Binding, error) {
	p.fn()
	return in, nil
}
func (p probe) String() string { return "probe" }

// A self-triggering rule hits the execution limit and the transaction
// rolls back.
func TestRuleLimitAndRollback(t *testing.T) {
	db := New(Options{Support: rules.Options{UseFilter: true}, MaxRuleExecutions: 20})
	if err := db.DefineClass("stock",
		schema.Attribute{Name: "quantity", Kind: types.KindInt}); err != nil {
		t.Fatal(err)
	}
	err := db.DefineRule(
		rules.Def{Name: "loop", Event: calculus.P(event.Create("stock"))},
		Body{
			Condition: cond.True,
			Action: act.Action{Statements: []act.Statement{
				act.Create{Class: "stock", Once: true, Vals: map[string]cond.Term{}},
			}},
		})
	if err != nil {
		t.Fatal(err)
	}
	err = db.Run(func(tx *Txn) error {
		_, err := tx.Create("stock", nil)
		return err
	})
	if !errors.Is(err, ErrRuleLimit) {
		t.Fatalf("err = %v, want ErrRuleLimit", err)
	}
	if db.Store().Len() != 0 {
		t.Fatalf("rollback left %d objects", db.Store().Len())
	}
	// The database remains usable.
	db.DropRule("loop")
	if err := db.Run(func(tx *Txn) error {
		_, err := tx.Create("stock", nil)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if db.Store().Len() != 1 {
		t.Fatal("database unusable after rollback")
	}
}

func TestExplicitRollback(t *testing.T) {
	db := stockDB(t)
	tx, _ := db.Begin()
	tx.Create("stock", map[string]types.Value{"quantity": types.Int(1)})
	if err := tx.Rollback(); err != nil {
		t.Fatal(err)
	}
	if db.Store().Len() != 0 {
		t.Fatal("rollback did not undo the creation")
	}
	if err := tx.EndLine(); !errors.Is(err, ErrNoTransaction) {
		t.Fatal("operations on a closed transaction accepted")
	}
	// A new transaction can begin.
	if _, err := db.Begin(); err != nil {
		t.Fatal(err)
	}
}

// Composite-event rule: create(stock) followed on the same object by a
// quantity modification (instance precedence).
func TestCompositeEventRule(t *testing.T) {
	db := stockDB(t)
	seq := calculus.PrecI(calculus.P(event.Create("stock")), calculus.P(event.Modify("stock", "quantity")))
	var flagged []types.OID
	err := db.DefineRule(
		rules.Def{Name: "freshThenTouched", Event: seq},
		Body{
			Condition: cond.Formula{Atoms: []cond.Atom{
				cond.Occurred{Event: seq, Var: "S"},
				recordVar{"S", &flagged},
			}},
			Action: act.Action{},
		})
	if err != nil {
		t.Fatal(err)
	}
	tx, _ := db.Begin()
	o1, _ := tx.Create("stock", map[string]types.Value{"quantity": types.Int(1)})
	o2, _ := tx.Create("stock", map[string]types.Value{"quantity": types.Int(1)})
	if err := tx.EndLine(); err != nil {
		t.Fatal(err)
	}
	if len(flagged) != 0 {
		t.Fatal("rule fired before the sequence completed")
	}
	tx.Modify(o1, "quantity", types.Int(2))
	if err := tx.EndLine(); err != nil {
		t.Fatal(err)
	}
	if len(flagged) != 1 || flagged[0] != o1 {
		t.Fatalf("flagged = %v, want [%v]", flagged, o1)
	}
	_ = o2
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
}

// recordVar records the OIDs a variable is bound to.
type recordVar struct {
	name string
	out  *[]types.OID
}

func (r recordVar) Eval(_ *cond.Ctx, in []cond.Binding) ([]cond.Binding, error) {
	for _, env := range in {
		*r.out = append(*r.out, env[r.name].AsOID())
	}
	return in, nil
}
func (r recordVar) String() string { return "record(" + r.name + ")" }

// A negation rule needs R non-empty: a transaction with no events leaves
// it untriggered; a transaction with an unrelated event fires it at
// commit.
func TestNegationRuleReactivity(t *testing.T) {
	db := stockDB(t)
	considered := 0
	err := db.DefineRule(
		rules.Def{Name: "noCreates", Coupling: rules.Deferred,
			Event: calculus.Neg(calculus.P(event.Create("stock")))},
		Body{
			Condition: cond.Formula{Atoms: []cond.Atom{probe{func() { considered++ }}}},
			Action:    act.Action{},
		})
	if err != nil {
		t.Fatal(err)
	}
	// Empty transaction: nothing fires.
	if err := db.Run(func(*Txn) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if considered != 0 {
		t.Fatal("negation rule fired on an empty transaction")
	}
	// Unrelated event: fires.
	if err := db.Run(func(tx *Txn) error {
		_, err := tx.Create("show", map[string]types.Value{"quantity": types.Int(1)})
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if considered != 1 {
		t.Fatalf("considered = %d, want 1", considered)
	}
	// A stock creation suppresses it.
	if err := db.Run(func(tx *Txn) error {
		_, err := tx.Create("stock", map[string]types.Value{"quantity": types.Int(1)})
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if considered != 1 {
		t.Fatalf("negation rule fired although the negated event occurred (considered = %d)", considered)
	}
}

// Rules persist across transactions; triggering state does not.
func TestTransactionIsolationOfTriggering(t *testing.T) {
	db := stockDB(t)
	fired := 0
	pair := calculus.Conj(calculus.P(event.Create("stock")), calculus.P(event.Create("show")))
	err := db.DefineRule(
		rules.Def{Name: "pair", Event: pair},
		Body{Condition: cond.Formula{Atoms: []cond.Atom{probe{func() { fired++ }}}}},
	)
	if err != nil {
		t.Fatal(err)
	}
	// First transaction: only the stock half.
	db.Run(func(tx *Txn) error {
		_, err := tx.Create("stock", map[string]types.Value{"quantity": types.Int(1)})
		return err
	})
	// Second transaction: only the show half. The conjunction must NOT
	// span transactions (the Event Base is per-transaction).
	db.Run(func(tx *Txn) error {
		_, err := tx.Create("show", map[string]types.Value{"quantity": types.Int(1)})
		return err
	})
	if fired != 0 {
		t.Fatalf("conjunction spanned transactions (fired = %d)", fired)
	}
	// Both halves in one transaction: fires.
	db.Run(func(tx *Txn) error {
		if _, err := tx.Create("stock", map[string]types.Value{"quantity": types.Int(1)}); err != nil {
			return err
		}
		_, err := tx.Create("show", map[string]types.Value{"quantity": types.Int(1)})
		return err
	})
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
}

func TestEngineErrors(t *testing.T) {
	db := stockDB(t)
	if _, err := db.Begin(); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Begin(); err == nil {
		t.Fatal("nested transaction accepted")
	}
	if err := db.DefineRule(rules.Def{Name: "r", Event: calculus.P(event.Create("stock"))}, Body{}); err == nil {
		t.Fatal("rule definition inside a transaction accepted")
	}
	db.txn.Rollback()

	if err := db.DefineRule(rules.Def{Name: "ghost",
		Event: calculus.P(event.Create("nosuchclass"))}, Body{}); err == nil {
		t.Fatal("rule on unknown class accepted")
	}

	tx, _ := db.Begin()
	if _, err := tx.Create("nosuch", nil); err == nil {
		t.Fatal("create of unknown class accepted")
	}
	if err := tx.Modify(99, "quantity", types.Int(1)); err == nil {
		t.Fatal("modify of missing object accepted")
	}
	if err := tx.Delete(99); err == nil {
		t.Fatal("delete of missing object accepted")
	}
	tx.Rollback()
}

// A condition error mid-cascade rolls the transaction back.
func TestConditionErrorRollsBack(t *testing.T) {
	db := stockDB(t)
	err := db.DefineRule(
		rules.Def{Name: "broken", Event: calculus.P(event.Create("stock"))},
		Body{Condition: cond.Formula{Atoms: []cond.Atom{
			cond.Compare{L: cond.Attr{Var: "S", Attr: "quantity"}, Op: cond.CmpGt, R: cond.Const{V: types.Int(0)}},
		}}},
	)
	if err != nil {
		t.Fatal(err)
	}
	err = db.Run(func(tx *Txn) error {
		_, err := tx.Create("stock", map[string]types.Value{"quantity": types.Int(1)})
		return err
	})
	if err == nil {
		t.Fatal("unbound-variable condition did not error")
	}
	if db.Store().Len() != 0 {
		t.Fatal("failed transaction left state behind")
	}
}

func TestSelectLogsEvents(t *testing.T) {
	db := stockDB(t)
	fired := 0
	err := db.DefineRule(
		rules.Def{Name: "onSelect", Event: calculus.P(event.T(event.OpSelect, "stock"))},
		Body{Condition: cond.Formula{Atoms: []cond.Atom{probe{func() { fired++ }}}}},
	)
	if err != nil {
		t.Fatal(err)
	}
	db.Run(func(tx *Txn) error {
		if _, err := tx.Create("stock", map[string]types.Value{"quantity": types.Int(1)}); err != nil {
			return err
		}
		_, err := tx.Select("stock")
		return err
	})
	if fired != 1 {
		t.Fatalf("select rule fired %d times, want 1", fired)
	}
}
