package engine

import (
	"chimera/internal/metrics"
)

// engineMetrics is the engine layer's instrument set: transaction
// outcomes, block boundaries, occurrences, rule considerations and
// executions, plus the watermark-age gauge (how far the consumption
// low-watermark trails the clock — a stall means some rule has not been
// considered for a long stretch and the Event Base cannot compact).
// The zero value (all nil instruments) is the disabled configuration;
// every report is then a branch-predictable nil check and nothing else.
type engineMetrics struct {
	transactions   *metrics.Counter
	commits        *metrics.Counter
	rollbacks      *metrics.Counter
	blocks         *metrics.Counter
	events         *metrics.Counter
	considerations *metrics.Counter
	executions     *metrics.Counter
	blockEvents    *metrics.Histogram
	watermarkAge   *metrics.Gauge
	// Multi-session instruments: how many transaction lines are open and
	// how long committing lines wait for the commit latch (the pipeline's
	// serialization point). Latch waits and conflicts are reported by the
	// object layer (chimera_object_latch_*).
	activeLines *metrics.Gauge
	commitWait  *metrics.Histogram
	// Snapshot-read instruments: read-only transactions begun, the epoch
	// of the latest published snapshot, and how many object copies
	// commit publication has produced (the write-amplification of the
	// lock-free read path).
	readTxns         *metrics.Counter
	snapshotEpoch    *metrics.Gauge
	publishedObjects *metrics.Counter
	// Durability instruments: WAL records and bytes enqueued, committer
	// flushes (store appends) and fsyncs, checkpoints written and sealed
	// segments persisted by them.
	walRecords        *metrics.Counter
	walBytes          *metrics.Counter
	walFlushes        *metrics.Counter
	walFsyncs         *metrics.Counter
	checkpoints       *metrics.Counter
	segmentsPersisted *metrics.Counter
	// Resource-governance instruments: transactions killed by the gas or
	// wall-clock budget, Event Base appends refused by the capacity
	// bounds, and rule cascades stopped by MaxRuleExecutions.
	gasKills       *metrics.Counter
	deadlineKills  *metrics.Counter
	eventLimitHits *metrics.Counter
	ruleLimitHits  *metrics.Counter
}

func newEngineMetrics(r *metrics.Registry) engineMetrics {
	if r == nil {
		return engineMetrics{}
	}
	return engineMetrics{
		transactions:   r.Counter("chimera_engine_transactions_total"),
		commits:        r.Counter("chimera_engine_commits_total"),
		rollbacks:      r.Counter("chimera_engine_rollbacks_total"),
		blocks:         r.Counter("chimera_engine_blocks_total"),
		events:         r.Counter("chimera_engine_events_total"),
		considerations: r.Counter("chimera_engine_considerations_total"),
		executions:     r.Counter("chimera_engine_executions_total"),
		blockEvents: r.Histogram("chimera_engine_block_events",
			0, 1, 2, 4, 8, 16, 32, 64, 128, 256, 1024),
		watermarkAge: r.Gauge("chimera_engine_watermark_age"),
		activeLines:  r.Gauge("chimera_engine_active_lines"),
		commitWait: r.Histogram("chimera_engine_commit_wait_ns",
			1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9),
		readTxns:         r.Counter("chimera_engine_read_txns_total"),
		snapshotEpoch:    r.Gauge("chimera_engine_snapshot_epoch"),
		publishedObjects: r.Counter("chimera_engine_published_objects_total"),
		walRecords:        r.Counter("chimera_wal_records_total"),
		walBytes:          r.Counter("chimera_wal_bytes_total"),
		walFlushes:        r.Counter("chimera_wal_flushes_total"),
		walFsyncs:         r.Counter("chimera_wal_fsyncs_total"),
		checkpoints:       r.Counter("chimera_ckpt_total"),
		segmentsPersisted: r.Counter("chimera_ckpt_segments_persisted_total"),
		gasKills:          r.Counter("chimera_engine_gas_kills_total"),
		deadlineKills:     r.Counter("chimera_engine_deadline_kills_total"),
		eventLimitHits:    r.Counter("chimera_engine_event_limit_hits_total"),
		ruleLimitHits:     r.Counter("chimera_engine_rule_limit_hits_total"),
	}
}

// Metrics returns the registry the database reports into, or nil when
// metrics are disabled.
func (db *DB) Metrics() *metrics.Registry { return db.opts.Metrics }

// Snapshot copies every metric the database and its layers (Event Base,
// Trigger Support, incremental sweep) have reported. With metrics
// disabled it returns the zero (empty) snapshot.
func (db *DB) Snapshot() metrics.Snapshot { return db.opts.Metrics.Snapshot() }
