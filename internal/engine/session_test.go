package engine

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"sync"
	"testing"
	"time"

	"chimera/internal/act"
	"chimera/internal/calculus"
	"chimera/internal/cond"
	"chimera/internal/event"
	"chimera/internal/rules"
	"chimera/internal/schema"
	"chimera/internal/types"
)

// multiDB is stockDB with n concurrent transaction lines admitted.
func multiDB(t *testing.T, n int) *DB {
	t.Helper()
	opts := DefaultOptions()
	opts.MaxSessions = n
	opts.LockWait = 5 * time.Second
	db := New(opts)
	if err := db.DefineClass("stock",
		schema.Attribute{Name: "name", Kind: types.KindString},
		schema.Attribute{Name: "quantity", Kind: types.KindInt},
		schema.Attribute{Name: "maxquantity", Kind: types.KindInt},
		schema.Attribute{Name: "minquantity", Kind: types.KindInt},
	); err != nil {
		t.Fatal(err)
	}
	return db
}

func TestErrTxnOpenSingleSession(t *testing.T) {
	db := stockDB(t)
	tx, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Begin(); !errors.Is(err, ErrTxnOpen) {
		t.Fatalf("second Begin = %v, want ErrTxnOpen", err)
	}
	if err := tx.Rollback(); err != nil {
		t.Fatal(err)
	}
	tx2, err := db.Begin()
	if err != nil {
		t.Fatalf("Begin after rollback: %v", err)
	}
	tx2.Rollback()
}

func TestErrTxnOpenAtSessionLimit(t *testing.T) {
	db := multiDB(t, 2)
	a, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	b, err := db.Begin()
	if err != nil {
		t.Fatalf("second line within limit: %v", err)
	}
	if _, err := db.Begin(); !errors.Is(err, ErrTxnOpen) {
		t.Fatalf("Begin over limit = %v, want ErrTxnOpen", err)
	}
	if db.ActiveLines() != 2 {
		t.Errorf("ActiveLines = %d, want 2", db.ActiveLines())
	}
	a.Rollback()
	c, err := db.Begin()
	if err != nil {
		t.Fatalf("Begin after a slot freed: %v", err)
	}
	c.Rollback()
	b.Rollback()
	if db.ActiveLines() != 0 {
		t.Errorf("ActiveLines = %d after all closed, want 0", db.ActiveLines())
	}
}

func TestRunPanicRollsBack(t *testing.T) {
	db := stockDB(t)
	var oid types.OID
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("panic did not propagate out of Run")
			}
		}()
		db.Run(func(tx *Txn) error {
			var err error
			oid, err = tx.Create("stock", map[string]types.Value{"quantity": types.Int(5)})
			if err != nil {
				return err
			}
			panic("boom")
		})
	}()
	if _, ok := db.Store().Get(oid); ok {
		t.Error("creation survived a panic inside Run")
	}
	// The transaction slot must be free again.
	if err := db.Run(func(tx *Txn) error {
		_, err := tx.Create("stock", map[string]types.Value{"quantity": types.Int(1)})
		return err
	}); err != nil {
		t.Fatalf("Run after panic: %v", err)
	}
}

func TestDefineRuleBlockedWhileLinesOpen(t *testing.T) {
	db := multiDB(t, 2)
	tx, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	def := rules.Def{Name: "r", Target: "stock",
		Event: calculus.P(event.Create("stock")), Coupling: rules.Immediate}
	if err := db.DefineRule(def, Body{}); err == nil {
		t.Error("DefineRule accepted while a line is open")
	}
	if err := db.DropRule("nope"); err == nil {
		t.Error("DropRule accepted while a line is open")
	}
	tx.Rollback()
	if err := db.DefineRule(def, Body{}); err != nil {
		t.Errorf("DefineRule after lines closed: %v", err)
	}
}

func TestMultiSessionConflictAndRetry(t *testing.T) {
	opts := DefaultOptions()
	opts.MaxSessions = 2
	opts.LockWait = -1 // try-latch: conflicts fail immediately
	db := New(opts)
	if err := db.DefineClass("stock",
		schema.Attribute{Name: "quantity", Kind: types.KindInt}); err != nil {
		t.Fatal(err)
	}
	var oid types.OID
	if err := db.Run(func(tx *Txn) error {
		var err error
		oid, err = tx.Create("stock", map[string]types.Value{"quantity": types.Int(0)})
		return err
	}); err != nil {
		t.Fatal(err)
	}

	a, _ := db.Begin()
	b, _ := db.Begin()
	if err := a.Modify(oid, "quantity", types.Int(1)); err != nil {
		t.Fatal(err)
	}
	err := b.Modify(oid, "quantity", types.Int(2))
	if !errors.Is(err, ErrConflict) {
		t.Fatalf("conflicting modify = %v, want ErrConflict", err)
	}
	b.Rollback()
	if err := a.Commit(); err != nil {
		t.Fatal(err)
	}
	if got := db.Stats().Conflicts; got == 0 {
		t.Error("Stats.Conflicts did not count the conflict")
	}
	// Retry of the loser now succeeds.
	if err := db.Run(func(tx *Txn) error {
		return tx.Modify(oid, "quantity", types.Int(2))
	}); err != nil {
		t.Fatal(err)
	}
	o, _ := db.Store().Get(oid)
	if o.MustGet("quantity").AsInt() != 2 {
		t.Errorf("quantity = %d, want 2", o.MustGet("quantity").AsInt())
	}
}

// TestMultiSessionParallelTriggering runs concurrent lines on disjoint
// partitions — each line creates its own class's objects and its rule
// fires over them — and checks every line's rule work landed. Exercised
// by the CI -race job.
func TestMultiSessionParallelTriggering(t *testing.T) {
	const lines = 4
	opts := DefaultOptions()
	opts.MaxSessions = lines
	opts.LockWait = 5 * time.Second
	db := New(opts)
	for i := 0; i < lines; i++ {
		class := fmt.Sprintf("stock%d", i)
		if err := db.DefineClass(class,
			schema.Attribute{Name: "quantity", Kind: types.KindInt},
			schema.Attribute{Name: "maxquantity", Kind: types.KindInt},
		); err != nil {
			t.Fatal(err)
		}
		err := db.DefineRule(
			rules.Def{
				Name:     "cap" + class,
				Target:   class,
				Event:    calculus.P(event.Create(class)),
				Coupling: rules.Immediate,
			},
			Body{
				Condition: cond.Formula{Atoms: []cond.Atom{
					cond.Class{Class: class, Var: "S"},
					cond.Occurred{Event: calculus.P(event.Create(class)), Var: "S"},
					cond.Compare{
						L:  cond.Attr{Var: "S", Attr: "quantity"},
						Op: cond.CmpGt,
						R:  cond.Attr{Var: "S", Attr: "maxquantity"},
					},
				}},
				Action: act.Action{Statements: []act.Statement{
					act.Modify{Class: class, Attr: "quantity", Var: "S",
						Value: cond.Attr{Var: "S", Attr: "maxquantity"}},
				}},
			})
		if err != nil {
			t.Fatal(err)
		}
	}

	const perLine = 10
	oids := make([][]types.OID, lines)
	var wg sync.WaitGroup
	for i := 0; i < lines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			class := fmt.Sprintf("stock%d", i)
			for j := 0; j < perLine; j++ {
				err := db.Run(func(tx *Txn) error {
					oid, err := tx.Create(class, map[string]types.Value{
						"quantity": types.Int(100), "maxquantity": types.Int(40),
					})
					if err != nil {
						return err
					}
					oids[i] = append(oids[i], oid)
					return nil
				})
				if err != nil {
					t.Errorf("line %d txn %d: %v", i, j, err)
					return
				}
			}
		}(i)
	}
	wg.Wait()

	for i := range oids {
		if len(oids[i]) != perLine {
			t.Fatalf("line %d committed %d objects, want %d", i, len(oids[i]), perLine)
		}
		for _, oid := range oids[i] {
			o, ok := db.Store().Get(oid)
			if !ok {
				t.Fatalf("object %v lost", oid)
			}
			if got := o.MustGet("quantity").AsInt(); got != 40 {
				t.Errorf("line %d object %v quantity = %d, want 40 (rule capped)", i, oid, got)
			}
		}
	}
	if got := db.Stats().RuleExecutions; got != lines*perLine {
		t.Errorf("RuleExecutions = %d, want %d", got, lines*perLine)
	}
	if db.ActiveLines() != 0 {
		t.Errorf("ActiveLines = %d at quiescence", db.ActiveLines())
	}
}

// TestMultiSessionStressContended has every line increment one shared
// counter through full engine transactions with conflict-retry; the
// final value must be exact. Exercised by the CI -race job.
func TestMultiSessionStressContended(t *testing.T) {
	const lines, rounds = 4, 20
	opts := DefaultOptions()
	opts.MaxSessions = lines
	opts.LockWait = 20 * time.Millisecond
	db := New(opts)
	if err := db.DefineClass("counter",
		schema.Attribute{Name: "n", Kind: types.KindInt}); err != nil {
		t.Fatal(err)
	}
	var oid types.OID
	if err := db.Run(func(tx *Txn) error {
		var err error
		oid, err = tx.Create("counter", map[string]types.Value{"n": types.Int(0)})
		return err
	}); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for i := 0; i < lines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				for {
					err := db.Run(func(tx *Txn) error {
						o, ok := tx.Get(oid)
						if !ok {
							return errors.New("counter unreadable (conflict)")
						}
						return tx.Modify(oid, "n", types.Int(o.MustGet("n").AsInt()+1))
					})
					if err == nil {
						break
					}
					if errors.Is(err, ErrTxnOpen) {
						time.Sleep(time.Millisecond) // all slots busy; retry
					} else {
						// Read→upgrade conflict: jittered backoff so the
						// lines don't retry in lockstep.
						time.Sleep(time.Duration(rand.IntN(400)+50) * time.Microsecond)
					}
				}
			}
		}()
	}
	wg.Wait()
	o, _ := db.Store().Get(oid)
	if got := o.MustGet("n").AsInt(); got != lines*rounds {
		t.Errorf("counter = %d, want %d", got, lines*rounds)
	}
}

// TestMultiMatchesSingleSequentially runs the same transaction sequence
// through a single-session database and through a multi-session one used
// sequentially (one line at a time): results must agree — the
// multi-session machinery adds no observable behavior at concurrency 1.
func TestMultiMatchesSingleSequentially(t *testing.T) {
	run := func(db *DB) []int64 {
		t.Helper()
		defineCheckStockQty(t, db)
		var quantities []int64
		var oids []types.OID
		for i := 0; i < 5; i++ {
			err := db.Run(func(tx *Txn) error {
				oid, err := tx.Create("stock", map[string]types.Value{
					"quantity":    types.Int(int64(30 + 20*i)),
					"maxquantity": types.Int(50),
				})
				oids = append(oids, oid)
				return err
			})
			if err != nil {
				t.Fatal(err)
			}
		}
		for _, oid := range oids {
			o, _ := db.Store().Get(oid)
			quantities = append(quantities, o.MustGet("quantity").AsInt())
		}
		st := db.Stats()
		quantities = append(quantities, st.RuleExecutions, st.Events, st.Blocks)
		ts := db.Support().Stats()
		quantities = append(quantities, ts.Triggerings)
		return quantities
	}
	single := run(stockDB(t))
	multi := run(multiDB(t, 4))
	if len(single) != len(multi) {
		t.Fatalf("result lengths differ: %d vs %d", len(single), len(multi))
	}
	for i := range single {
		if single[i] != multi[i] {
			t.Errorf("result[%d]: single %d, multi %d", i, single[i], multi[i])
		}
	}
}
