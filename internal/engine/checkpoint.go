package engine

import (
	"errors"
	"fmt"

	"chimera/internal/clock"
	"chimera/internal/event"
	"chimera/internal/object"
	"chimera/internal/rules"
	"chimera/internal/schema"
	"chimera/internal/types"
	"chimera/internal/wire"
)

// A checkpoint is the engine's durable root: the committed
// schema/object/rule state, the clock, and — when a transaction is open
// — the live window's meta (interner tables, compaction counters), the
// per-rule marks (consideration horizons, triggered flags), the tail
// segment, and references to the sealed segments persisted alongside.
// Together with the WAL records that follow it, a checkpoint
// reconstructs the engine bit-identically.
//
// The generation protocol makes the checkpoint/WAL transition
// crash-safe at every instant: (1) persist the sealed segments the
// checkpoint will reference, (2) PutCheckpoint (atomic), (3) ResetWAL,
// (4) append the marker record carrying the checkpoint's sequence
// number, (5) drop obsolete segments. A crash between (2) and (3)
// leaves a WAL whose marker names the previous sequence — recovery sees
// the mismatch and ignores the stale log; a crash before (2) leaves the
// previous checkpoint's world fully intact (the freshly persisted
// segments are unreferenced garbage until the next checkpoint drops
// them).
const ckptVersion = 1

// checkpoint is the decoded form.
type checkpoint struct {
	Seq     uint64
	TxnGen  uint32
	Now     clock.Time
	NextOID types.OID
	InTxn   bool

	Classes []ckptClass
	Rules   []string
	Objects []ckptObject

	// Open-transaction section (InTxn only).
	Start      clock.Time
	Marks      []rules.Mark
	Undo       []object.UndoRec
	FirstSeg   uint64 // ordinal of the first live sealed segment
	SealedSegs uint64 // one past the last live sealed segment's ordinal
	Meta       event.BaseMeta
	Tail       *event.SegmentFrame
}

type ckptClass struct {
	Name   string
	Parent string
	Attrs  []schema.Attribute
}

type ckptObject struct {
	OID   types.OID
	Class string
	Vals  map[string]types.Value
}

// encodeCheckpoint captures the database into checkpoint bytes. t is
// the open transaction (nil when idle); st its exported base state
// (only read when t is non-nil). Called at a block boundary under the
// WAL barrier.
func (db *DB) encodeCheckpoint(seq uint64, t *Txn, st event.BaseState) ([]byte, error) {
	// Header frame.
	hdr := make([]byte, 0, 32)
	hdr = append(hdr, ckptVersion)
	hdr = wire.AppendUvarint(hdr, seq)
	hdr = wire.AppendUvarint(hdr, uint64(db.txnGen))
	hdr = wire.AppendVarint(hdr, int64(db.clock.Now()))
	hdr = wire.AppendVarint(hdr, int64(db.store.NextOID()))
	if t != nil {
		hdr = append(hdr, 1)
	} else {
		hdr = append(hdr, 0)
	}
	out := wire.AppendFrame(nil, hdr)

	// Catalog frame: classes parents-first, then rule sources in
	// priority order.
	cat := db.schema
	emitted := make(map[string]bool)
	var classes []ckptClass
	var emit func(name string) error
	emit = func(name string) error {
		if emitted[name] {
			return nil
		}
		c, ok := cat.Class(name)
		if !ok {
			return fmt.Errorf("engine: checkpoint: unknown class %q", name)
		}
		if p := c.Parent(); p != nil {
			if err := emit(p.Name()); err != nil {
				return err
			}
		}
		emitted[name] = true
		rec := ckptClass{Name: name}
		inherited := make(map[string]bool)
		if p := c.Parent(); p != nil {
			rec.Parent = p.Name()
			for _, a := range p.Attributes() {
				inherited[a.Name] = true
			}
		}
		for _, a := range c.Attributes() {
			if !inherited[a.Name] {
				rec.Attrs = append(rec.Attrs, a)
			}
		}
		classes = append(classes, rec)
		return nil
	}
	for _, name := range cat.Names() {
		if err := emit(name); err != nil {
			return nil, err
		}
	}
	catp := wire.AppendUvarint(nil, uint64(len(classes)))
	for _, c := range classes {
		catp = wire.AppendString(catp, c.Name)
		catp = wire.AppendString(catp, c.Parent)
		catp = wire.AppendUvarint(catp, uint64(len(c.Attrs)))
		for _, a := range c.Attrs {
			catp = wire.AppendString(catp, a.Name)
			catp = wire.AppendString(catp, a.Kind.String())
		}
	}
	ruleNames := db.support.Rules()
	catp = wire.AppendUvarint(catp, uint64(len(ruleNames)))
	for _, name := range ruleNames {
		rst, _ := db.support.Rule(name)
		catp = wire.AppendString(catp, RenderRule(rst.Def, db.bodies[name]))
	}
	out = wire.AppendFrame(out, catp)

	// Objects frame, ascending OID (exact class, not extension).
	var oids []types.OID
	byOID := make(map[types.OID]ckptObject)
	for _, name := range cat.Names() {
		sel, err := db.store.Select(name)
		if err != nil {
			return nil, err
		}
		for _, oid := range sel {
			o, ok := db.store.Get(oid)
			if !ok || o.Class().Name() != name {
				continue
			}
			oids = append(oids, oid)
			byOID[oid] = ckptObject{OID: oid, Class: name, Vals: o.Snapshot()}
		}
	}
	sortOIDs(oids)
	objp := wire.AppendUvarint(nil, uint64(len(oids)))
	for _, oid := range oids {
		rec := byOID[oid]
		objp = wire.AppendVarint(objp, int64(rec.OID))
		objp = wire.AppendString(objp, rec.Class)
		objp = wire.AppendUvarint(objp, uint64(len(rec.Vals)))
		var err error
		for k, v := range rec.Vals {
			objp = wire.AppendString(objp, k)
			if objp, err = wire.AppendValue(objp, v); err != nil {
				return nil, err
			}
		}
	}
	out = wire.AppendFrame(out, objp)

	if t == nil {
		return out, nil
	}

	// Open-transaction frame: start instant, marks, segment references.
	marks := db.support.Marks()
	txp := wire.AppendVarint(nil, int64(db.support.TxnStart()))
	txp = wire.AppendUvarint(txp, uint64(len(marks)))
	for _, m := range marks {
		txp = wire.AppendString(txp, m.Rule)
		txp = wire.AppendVarint(txp, int64(m.LastConsideration))
		if m.Triggered {
			txp = append(txp, 1)
		} else {
			txp = append(txp, 0)
		}
		txp = wire.AppendVarint(txp, int64(m.TriggeredAt))
	}
	// The open transaction's undo log: a WAL-replayed rollback must be
	// able to reverse mutations older than this checkpoint, whose WAL
	// records are about to be truncated.
	undo := t.line.ExportUndo()
	txp = wire.AppendUvarint(txp, uint64(len(undo)))
	for _, u := range undo {
		txp = append(txp, u.Kind)
		txp = wire.AppendVarint(txp, int64(u.OID))
		txp = wire.AppendString(txp, u.Class)
		txp = wire.AppendString(txp, u.Attr)
		if u.Had {
			txp = append(txp, 1)
		} else {
			txp = append(txp, 0)
		}
		var err error
		if txp, err = wire.AppendValue(txp, u.Val); err != nil {
			return nil, err
		}
		if u.Vals == nil {
			txp = append(txp, 0)
		} else {
			txp = append(txp, 1)
			txp = wire.AppendUvarint(txp, uint64(len(u.Vals)))
			for k, v := range u.Vals {
				txp = wire.AppendString(txp, k)
				if txp, err = wire.AppendValue(txp, v); err != nil {
					return nil, err
				}
			}
		}
		if u.Reuse {
			txp = append(txp, 1)
		} else {
			txp = append(txp, 0)
		}
	}
	first := uint64(st.Meta.RetiredSegs)
	txp = wire.AppendUvarint(txp, first)
	txp = wire.AppendUvarint(txp, first+uint64(len(st.Sealed)))
	if st.Tail != nil {
		txp = append(txp, 1)
	} else {
		txp = append(txp, 0)
	}
	out = wire.AppendFrame(out, txp)
	out = event.AppendBaseMeta(out, st.Meta)
	if st.Tail != nil {
		out = event.EncodeSegment(out, *st.Tail)
	}
	return out, nil
}

func sortOIDs(oids []types.OID) {
	for i := 1; i < len(oids); i++ {
		for j := i; j > 0 && oids[j] < oids[j-1]; j-- {
			oids[j], oids[j-1] = oids[j-1], oids[j]
		}
	}
}

// decodeCheckpoint parses checkpoint bytes.
func decodeCheckpoint(data []byte) (*checkpoint, error) {
	hdr, rest, err := wire.NextFrame(data)
	if err != nil || hdr == nil {
		if err == nil {
			err = fmt.Errorf("%w: missing checkpoint header", wire.ErrCorrupt)
		}
		return nil, err
	}
	if len(hdr) < 1 || hdr[0] != ckptVersion {
		return nil, fmt.Errorf("%w: unknown checkpoint version", wire.ErrCorrupt)
	}
	ck := &checkpoint{}
	p := hdr[1:]
	var v int64
	var n uint64
	if ck.Seq, p, err = wire.Uvarint(p); err != nil {
		return nil, err
	}
	if n, p, err = wire.Uvarint(p); err != nil {
		return nil, err
	}
	ck.TxnGen = uint32(n)
	if v, p, err = wire.Varint(p); err != nil {
		return nil, err
	}
	ck.Now = clock.Time(v)
	if v, p, err = wire.Varint(p); err != nil {
		return nil, err
	}
	ck.NextOID = types.OID(v)
	if len(p) != 1 {
		return nil, fmt.Errorf("%w: checkpoint header length", wire.ErrCorrupt)
	}
	ck.InTxn = p[0] != 0

	// Catalog frame.
	catp, rest, err := wire.NextFrame(rest)
	if err != nil || catp == nil {
		if err == nil {
			err = fmt.Errorf("%w: missing checkpoint catalog", wire.ErrCorrupt)
		}
		return nil, err
	}
	p = catp
	if n, p, err = wire.Uvarint(p); err != nil {
		return nil, err
	}
	ck.Classes = make([]ckptClass, n)
	for i := range ck.Classes {
		c := &ck.Classes[i]
		if c.Name, p, err = wire.String(p); err != nil {
			return nil, err
		}
		if c.Parent, p, err = wire.String(p); err != nil {
			return nil, err
		}
		var na uint64
		if na, p, err = wire.Uvarint(p); err != nil {
			return nil, err
		}
		c.Attrs = make([]schema.Attribute, na)
		for j := range c.Attrs {
			if c.Attrs[j].Name, p, err = wire.String(p); err != nil {
				return nil, err
			}
			var ks string
			if ks, p, err = wire.String(p); err != nil {
				return nil, err
			}
			if c.Attrs[j].Kind, err = types.ParseKind(ks); err != nil {
				return nil, fmt.Errorf("%w: %v", wire.ErrCorrupt, err)
			}
		}
	}
	if n, p, err = wire.Uvarint(p); err != nil {
		return nil, err
	}
	ck.Rules = make([]string, n)
	for i := range ck.Rules {
		if ck.Rules[i], p, err = wire.String(p); err != nil {
			return nil, err
		}
	}
	if len(p) != 0 {
		return nil, fmt.Errorf("%w: trailing bytes in checkpoint catalog", wire.ErrCorrupt)
	}

	// Objects frame.
	objp, rest, err := wire.NextFrame(rest)
	if err != nil || objp == nil {
		if err == nil {
			err = fmt.Errorf("%w: missing checkpoint objects", wire.ErrCorrupt)
		}
		return nil, err
	}
	p = objp
	if n, p, err = wire.Uvarint(p); err != nil {
		return nil, err
	}
	ck.Objects = make([]ckptObject, n)
	for i := range ck.Objects {
		o := &ck.Objects[i]
		if v, p, err = wire.Varint(p); err != nil {
			return nil, err
		}
		o.OID = types.OID(v)
		if o.Class, p, err = wire.String(p); err != nil {
			return nil, err
		}
		var nv uint64
		if nv, p, err = wire.Uvarint(p); err != nil {
			return nil, err
		}
		o.Vals = make(map[string]types.Value, nv)
		for j := uint64(0); j < nv; j++ {
			var k string
			if k, p, err = wire.String(p); err != nil {
				return nil, err
			}
			if o.Vals[k], p, err = wire.Value(p); err != nil {
				return nil, err
			}
		}
	}
	if len(p) != 0 {
		return nil, fmt.Errorf("%w: trailing bytes in checkpoint objects", wire.ErrCorrupt)
	}

	if !ck.InTxn {
		if len(rest) != 0 {
			return nil, fmt.Errorf("%w: trailing bytes after idle checkpoint", wire.ErrCorrupt)
		}
		return ck, nil
	}

	// Open-transaction frame.
	txp, rest, err := wire.NextFrame(rest)
	if err != nil || txp == nil {
		if err == nil {
			err = fmt.Errorf("%w: missing checkpoint txn section", wire.ErrCorrupt)
		}
		return nil, err
	}
	p = txp
	if v, p, err = wire.Varint(p); err != nil {
		return nil, err
	}
	ck.Start = clock.Time(v)
	if n, p, err = wire.Uvarint(p); err != nil {
		return nil, err
	}
	ck.Marks = make([]rules.Mark, n)
	for i := range ck.Marks {
		m := &ck.Marks[i]
		if m.Rule, p, err = wire.String(p); err != nil {
			return nil, err
		}
		if v, p, err = wire.Varint(p); err != nil {
			return nil, err
		}
		m.LastConsideration = clock.Time(v)
		if len(p) == 0 {
			return nil, wire.ErrCorrupt
		}
		m.Triggered = p[0] != 0
		p = p[1:]
		if v, p, err = wire.Varint(p); err != nil {
			return nil, err
		}
		m.TriggeredAt = clock.Time(v)
	}
	if n, p, err = wire.Uvarint(p); err != nil {
		return nil, err
	}
	ck.Undo = make([]object.UndoRec, n)
	for i := range ck.Undo {
		u := &ck.Undo[i]
		if len(p) == 0 {
			return nil, wire.ErrCorrupt
		}
		u.Kind = p[0]
		p = p[1:]
		if v, p, err = wire.Varint(p); err != nil {
			return nil, err
		}
		u.OID = types.OID(v)
		if u.Class, p, err = wire.String(p); err != nil {
			return nil, err
		}
		if u.Attr, p, err = wire.String(p); err != nil {
			return nil, err
		}
		if len(p) == 0 {
			return nil, wire.ErrCorrupt
		}
		u.Had = p[0] != 0
		p = p[1:]
		if u.Val, p, err = wire.Value(p); err != nil {
			return nil, err
		}
		if len(p) == 0 {
			return nil, wire.ErrCorrupt
		}
		hasVals := p[0] != 0
		p = p[1:]
		if hasVals {
			var nv uint64
			if nv, p, err = wire.Uvarint(p); err != nil {
				return nil, err
			}
			u.Vals = make(map[string]types.Value, nv)
			for j := uint64(0); j < nv; j++ {
				var k string
				if k, p, err = wire.String(p); err != nil {
					return nil, err
				}
				if u.Vals[k], p, err = wire.Value(p); err != nil {
					return nil, err
				}
			}
		}
		if len(p) == 0 {
			return nil, wire.ErrCorrupt
		}
		u.Reuse = p[0] != 0
		p = p[1:]
	}
	if ck.FirstSeg, p, err = wire.Uvarint(p); err != nil {
		return nil, err
	}
	if ck.SealedSegs, p, err = wire.Uvarint(p); err != nil {
		return nil, err
	}
	if len(p) != 1 {
		return nil, fmt.Errorf("%w: checkpoint txn section length", wire.ErrCorrupt)
	}
	hasTail := p[0] != 0

	var metaRest []byte
	if ck.Meta, metaRest, err = event.DecodeBaseMeta(rest); err != nil {
		return nil, err
	}
	rest = metaRest
	if hasTail {
		// The tail travels as the final frame; DecodeSegment wants exactly
		// one frame, which is what remains.
		tail, err := event.DecodeSegment(rest)
		if err != nil {
			return nil, err
		}
		ck.Tail = &tail
		rest = nil
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("%w: trailing bytes after checkpoint", wire.ErrCorrupt)
	}
	return ck, nil
}

// attachWAL starts the group committer over the configured store.
func (db *DB) attachWAL() {
	db.wal = newWALWriter(db.dur().Store, db.dur().Fsync, db.dur().syncInterval(), db.dur().clock(), &db.m)
}

// checkpointNow writes a checkpoint under the WAL barrier. t is the
// open transaction (nil when idle); the caller guarantees a block
// boundary (no pending occurrences, no buffered ops).
func (db *DB) checkpointNow(t *Txn) error {
	store := db.dur().Store
	return db.wal.barrier(true, func() error {
		newSeq := db.ckptSeq + 1
		var st event.BaseState
		if t != nil {
			var err error
			if st, err = t.base.ExportState(); err != nil {
				return err
			}
			// Persist sealed segments not yet stored in this generation.
			// Compaction may have retired never-persisted segments; skip
			// below the live floor.
			from := db.segsPersisted
			first := uint64(st.Meta.RetiredSegs)
			if from < first {
				from = first
			}
			for i := range st.Sealed {
				ord := first + uint64(i)
				if ord < from {
					continue
				}
				if err := store.PutSegment(segKey(db.txnGen, ord), event.EncodeSegment(nil, st.Sealed[i])); err != nil {
					return err
				}
				db.m.segmentsPersisted.Inc()
			}
			db.segsPersisted = first + uint64(len(st.Sealed))
		}
		buf, err := db.encodeCheckpoint(newSeq, t, st)
		if err != nil {
			return err
		}
		if err := store.PutCheckpoint(buf); err != nil {
			return err
		}
		if err := store.ResetWAL(); err != nil {
			return err
		}
		if err := store.AppendWAL(wire.AppendFrame(nil, encCkptMarker(nil, newSeq))); err != nil {
			return err
		}
		// Obsolete segments: everything of earlier generations, plus this
		// generation's frames below the compaction floor.
		if t != nil {
			err = store.DropSegmentsBelow(segKey(db.txnGen, uint64(st.Meta.RetiredSegs)))
		} else {
			err = store.DropSegmentsBelow(segKey(db.txnGen+1, 0))
		}
		if err != nil {
			return err
		}
		db.ckptSeq = newSeq
		db.blocksSinceCkpt = 0
		db.m.checkpoints.Inc()
		if t != nil {
			// Every type interned so far travels in the checkpoint's meta;
			// records after the reset need not re-declare them.
			t.walTypes = t.walTypes[:0]
			for range st.Meta.Types {
				t.walTypes = append(t.walTypes, true)
			}
		}
		return nil
	})
}

// Checkpoint writes a checkpoint: the committed state, and — when a
// transaction is open — the live window at its current block boundary.
// The WAL is truncated; sealed segments the checkpoint references are
// persisted first. It must be called at a block boundary (not from
// inside a rule action; with pending occurrences, call EndLine first).
func (db *DB) Checkpoint() error {
	if db.wal == nil {
		return errors.New("engine: not a durable database")
	}
	if db.multiSession() {
		// A multi-session checkpoint must capture only committed state,
		// but encodeCheckpoint reads the live store — which would include
		// other lines' uncommitted latched writes. Checkpoints are
		// therefore idle-only: db.mu is held across the whole write so no
		// Begin can slip a new line in mid-capture (commits in flight are
		// impossible at active == 0 — a line counts as active until its
		// post-publication finish).
		db.mu.Lock()
		defer db.mu.Unlock()
		if db.closed {
			return ErrClosed
		}
		if db.active > 0 {
			return fmt.Errorf("engine: checkpoint with %d transaction line(s) open; multi-session checkpoints require an idle engine", db.active)
		}
		return db.checkpointNow(nil)
	}
	db.mu.Lock()
	t := db.txn
	closed := db.closed
	db.mu.Unlock()
	if closed {
		return ErrClosed
	}
	if t != nil && (len(t.pending) > 0 || len(t.wrec) > 0) {
		return errors.New("engine: checkpoint mid-block; call EndLine first")
	}
	return db.checkpointNow(t)
}

// Checkpoint writes a checkpoint of the database with this transaction
// open — the live window is captured at the current block boundary.
func (t *Txn) Checkpoint() error {
	if err := t.check(); err != nil {
		return err
	}
	if t.db.wal == nil {
		return errors.New("engine: not a durable database")
	}
	if len(t.pending) > 0 || len(t.wrec) > 0 {
		return errors.New("engine: checkpoint mid-block; call EndLine first")
	}
	return t.db.checkpointNow(t)
}

// SyncWAL blocks until every WAL record appended so far is durable,
// regardless of the fsync policy. Crash tests use it to pin the log at
// a known boundary; applications can use it as an explicit durability
// point under FsyncInterval.
func (db *DB) SyncWAL() error {
	if db.wal == nil {
		return nil
	}
	db.wal.lock()
	n := db.wal.enqueued
	db.wal.unlock()
	return db.wal.waitDurable(n)
}

// Close flushes and syncs the WAL, stops the group committer and closes
// the store. The in-memory database remains readable; Begin and
// Checkpoint fail with ErrClosed. Closing a non-durable database is a
// no-op.
func (db *DB) Close() error {
	db.mu.Lock()
	if db.closed {
		db.mu.Unlock()
		return nil
	}
	db.closed = true
	db.mu.Unlock()
	if db.wal == nil {
		return nil
	}
	return db.wal.close()
}
