package engine_test

// Multi-session durability: concurrently-arriving commits stage their
// WAL records privately and append them as one contiguous run under the
// commit latch, so the log is a serial stream of whole transactions in
// commit order — and the group committer can cover any number of
// concurrent FsyncPerCommit commits with a single fsync. This suite
// proves the ordering (recovery lands on the identical state even when
// commit order inverts begin order), the privacy (rolled-back and
// in-flight transactions leave no trace in the log), and the sharing
// (fsyncs strictly fewer than commits under concurrency).

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"chimera/internal/engine"
	"chimera/internal/metrics"
	"chimera/internal/storage"
	"chimera/internal/types"
)

func multiDurOptions(store engine.SegmentStore, sessions int) engine.Options {
	o := durOptions(store, 0) // auto checkpoints are single-session only
	o.MaxSessions = sessions
	o.LockWait = 5 * time.Second
	return o
}

// storeFingerprint renders the committed object state: every object in
// class order plus the OID allocation point. (Unlike durFingerprint it
// omits the clock — in multi-session mode a rolled-back transaction's
// ticks advance the live clock but are deliberately absent from the
// log.)
func storeFingerprint(db *engine.DB) string {
	var b strings.Builder
	fmt.Fprintf(&b, "nextOID=%d\n", db.Store().NextOID())
	for _, class := range db.Schema().Names() {
		oids, _ := db.Store().Select(class)
		for _, oid := range oids {
			if o, ok := db.Store().Get(oid); ok && o.Class().Name() == class {
				b.WriteString(o.String())
				b.WriteByte('\n')
			}
		}
	}
	return b.String()
}

// TestMultiSessionRecoveryCommitOrder is the two-session recovery
// differential: OID allocation interleaves across two lines but the
// second-begun line commits first, so replay (which runs the log in
// commit order) must land creations at their logged identities, not
// re-derive them from allocation order.
func TestMultiSessionRecoveryCommitOrder(t *testing.T) {
	store := storage.NewMemStore()
	db, err := engine.Open(multiDurOptions(store, 2))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	defineDurCatalog(t, db)

	tx1, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	tx2, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	// Interleaved allocation across disjoint classes (same-class creates
	// would conflict on the class-extension latch): tx1 takes the first
	// and third OIDs, tx2 the second...
	if _, err := tx1.Create("item", map[string]types.Value{
		"n": types.Int(1), "cap": types.Int(50)}); err != nil {
		t.Fatal(err)
	}
	if _, err := tx2.Create("note", map[string]types.Value{
		"n": types.Int(2)}); err != nil {
		t.Fatal(err)
	}
	if _, err := tx1.Create("item", map[string]types.Value{
		"n": types.Int(3), "cap": types.Int(50)}); err != nil {
		t.Fatal(err)
	}
	// ...but tx2 commits first: the log holds tx2's run, then tx1's.
	// tx1's commit also fires the deferred audit rule (it saw item
	// creates), whose note-create lands inside tx1's logged run.
	if err := tx2.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := tx1.Commit(); err != nil {
		t.Fatal(err)
	}

	if err := db.SyncWAL(); err != nil {
		t.Fatal(err)
	}
	want := storeFingerprint(db)
	rdb, rtx, rep, err := engine.Recover(multiDurOptions(store.Clone(), 2))
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	defer rdb.Close()
	if rtx != nil {
		t.Fatal("recovery of a fully-committed multi-session log returned an open transaction")
	}
	if rep.TxnOpen {
		t.Error("report claims an open transaction")
	}
	if got := storeFingerprint(rdb); got != want {
		t.Errorf("recovered state differs:\n--- live ---\n%s--- recovered ---\n%s", want, got)
	}
}

// TestMultiSessionRollbackLeavesNoTrace: a rolled-back line's staged run
// is discarded, never appended — the log (and so recovery) must not know
// the transaction existed, while a concurrent committed line survives.
func TestMultiSessionRollbackLeavesNoTrace(t *testing.T) {
	store := storage.NewMemStore()
	db, err := engine.Open(multiDurOptions(store, 2))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	defineDurCatalog(t, db)

	txKeep, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	txDrop, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := txDrop.Create("item", map[string]types.Value{
		"n": types.Int(99), "cap": types.Int(50)}); err != nil {
		t.Fatal(err)
	}
	if _, err := txKeep.Create("note", map[string]types.Value{
		"n": types.Int(7)}); err != nil {
		t.Fatal(err)
	}
	if err := txDrop.Rollback(); err != nil {
		t.Fatal(err)
	}
	if err := txKeep.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := db.SyncWAL(); err != nil {
		t.Fatal(err)
	}

	rdb, rtx, _, err := engine.Recover(multiDurOptions(store.Clone(), 2))
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	defer rdb.Close()
	if rtx != nil {
		t.Fatal("unexpected open transaction after recovery")
	}
	items, err := rdb.Store().Select("item")
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 0 {
		t.Errorf("recovered %d item(s) from a rolled-back line, want 0", len(items))
	}
	notes, err := rdb.Store().Select("note")
	if err != nil {
		t.Fatal(err)
	}
	if len(notes) != 1 {
		t.Fatalf("recovered %d note(s), want exactly the committed one", len(notes))
	}
	o, _ := rdb.Store().Get(notes[0])
	if v, err := o.Get("n"); err != nil || v.AsInt() != 7 {
		t.Errorf("recovered note n = %v (err %v), want 7", v, err)
	}
}

// TestMultiSessionCrashMidTransaction: a crash while a line is open
// mid-run loses that line entirely (its records were staged privately,
// never in the store) and recovery reports no open transaction.
func TestMultiSessionCrashMidTransaction(t *testing.T) {
	store := storage.NewMemStore()
	db, err := engine.Open(multiDurOptions(store, 2))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	defineDurCatalog(t, db)

	if err := db.Run(func(tx *engine.Txn) error {
		_, err := tx.Create("item", map[string]types.Value{
			"n": types.Int(1), "cap": types.Int(50)})
		return err
	}); err != nil {
		t.Fatal(err)
	}
	tx, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Create("item", map[string]types.Value{
		"n": types.Int(2), "cap": types.Int(50)}); err != nil {
		t.Fatal(err)
	}

	// Crash here: clone the store with the second transaction open.
	if err := db.SyncWAL(); err != nil {
		t.Fatal(err)
	}
	rdb, rtx, rep, err := engine.Recover(multiDurOptions(store.Clone(), 2))
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	defer rdb.Close()
	if rtx != nil || rep.TxnOpen {
		t.Fatal("multi-session recovery returned an open transaction")
	}
	oids, err := rdb.Store().Select("item")
	if err != nil {
		t.Fatal(err)
	}
	if len(oids) != 1 {
		t.Fatalf("recovered %d item(s), want 1 (the committed one)", len(oids))
	}
	tx.Rollback()
}

// TestMultiSessionCheckpointIdleOnly: explicit checkpoints in
// multi-session mode demand an idle engine and work once it is.
func TestMultiSessionCheckpointIdleOnly(t *testing.T) {
	store := storage.NewMemStore()
	db, err := engine.Open(multiDurOptions(store, 2))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	defineDurCatalog(t, db)

	tx, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Checkpoint(); err == nil {
		t.Error("Checkpoint succeeded with a line open")
	}
	if err := tx.Rollback(); err != nil {
		t.Fatal(err)
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatalf("idle Checkpoint: %v", err)
	}

	// Commits after the checkpoint replay on top of it.
	if err := db.Run(func(tx *engine.Txn) error {
		_, err := tx.Create("item", map[string]types.Value{
			"n": types.Int(4), "cap": types.Int(50)})
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if err := db.SyncWAL(); err != nil {
		t.Fatal(err)
	}
	want := storeFingerprint(db)
	rdb, _, _, err := engine.Recover(multiDurOptions(store.Clone(), 2))
	if err != nil {
		t.Fatalf("recover after checkpoint: %v", err)
	}
	defer rdb.Close()
	if got := storeFingerprint(rdb); got != want {
		t.Errorf("post-checkpoint recovery differs:\n--- live ---\n%s--- recovered ---\n%s", want, got)
	}
}

// slowSyncStore delays SyncWAL so concurrent FsyncPerCommit committers
// pile up behind one in-flight fsync — the condition group commit
// exists to exploit.
type slowSyncStore struct {
	*storage.MemStore
	delay time.Duration
}

func (s *slowSyncStore) SyncWAL() error {
	time.Sleep(s.delay)
	return s.MemStore.SyncWAL()
}

// TestMultiSessionGroupCommitSharesFsyncs drives 8 concurrent
// FsyncPerCommit writers against a slow-sync store and requires
// strictly fewer fsyncs than commits: concurrently-arriving commit
// records ride the same sync.
func TestMultiSessionGroupCommitSharesFsyncs(t *testing.T) {
	reg := metrics.NewRegistry()
	store := &slowSyncStore{MemStore: storage.NewMemStore(), delay: 2 * time.Millisecond}
	opts := multiDurOptions(store, 8)
	opts.Durability.Fsync = engine.FsyncPerCommit
	opts.Metrics = reg
	db, err := engine.Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	defineDurCatalog(t, db)

	fsyncs := func() int64 { return reg.Snapshot().Counters["chimera_wal_fsyncs_total"] }
	base := fsyncs()

	const workers, perWorker = 8, 12
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				if err := db.Run(func(tx *engine.Txn) error {
					_, err := tx.Create("item", map[string]types.Value{
						"n": types.Int(int64(w)), "cap": types.Int(50)})
					return err
				}); err != nil {
					errs <- fmt.Errorf("worker %d: %w", w, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	const commits = workers * perWorker
	got := fsyncs() - base
	if got == 0 {
		t.Fatal("no fsyncs recorded under FsyncPerCommit")
	}
	if got >= commits {
		t.Errorf("group commit shared nothing: %d fsyncs for %d commits", got, commits)
	}
	t.Logf("group commit: %d commits over %d fsyncs (%.2f fsyncs/commit)",
		commits, got, float64(got)/float64(commits))

	// And the durable state is complete: every committed create survives.
	if err := db.SyncWAL(); err != nil {
		t.Fatal(err)
	}
	want := storeFingerprint(db)
	rdb, _, _, err := engine.Recover(func() engine.Options {
		o := multiDurOptions(store.Clone(), 8)
		o.Durability.Fsync = engine.FsyncPerCommit
		return o
	}())
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	defer rdb.Close()
	if gotFP := storeFingerprint(rdb); gotFP != want {
		t.Error("recovered state differs after concurrent group-committed workload")
	}
}
