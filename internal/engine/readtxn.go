package engine

import (
	"errors"

	"chimera/internal/object"
	"chimera/internal/types"
)

// ErrReadOnly is returned by every write-shaped operation attempted on a
// read-only transaction.
var ErrReadOnly = errors.New("engine: read-only transaction")

// ReadTxn is a read-only transaction: a pinned, immutable snapshot of
// the committed object store. It is the engine's lock-free read path —
// Begin takes no session slot, reads take no per-OID latches and never
// touch the commit latch, and no rule ever triggers. The price is
// staleness bounded by one commit: a ReadTxn observes the state
// published by the last commit that completed before BeginRead, and
// keeps observing exactly that state (snapshot isolation) until closed.
//
// A ReadTxn holds no resources beyond the snapshot pointer itself —
// there is nothing to leak, and Close exists for API symmetry (it
// invalidates the handle). It is returned by value so the whole
// begin/read/close cycle performs zero heap allocations in steady state.
//
// Unlike a Txn, a ReadTxn is safe for concurrent use: every method reads
// immutable state.
type ReadTxn struct {
	db   *DB
	snap *object.Snapshot
	done bool
}

// BeginRead opens a read-only transaction against the latest published
// snapshot. It never fails and never waits behind a transaction:
// admission control (MaxSessions) governs writers only, and a closed
// database still serves its final published state. When no commit has
// landed since the last BeginRead, pinning is a single atomic load with
// zero allocation; when commits have been staged since, this call
// materializes their deltas into the next snapshot — an O(touched
// shards) rebuild shared by every commit staged in between, serialized
// only against other materializing readers and O(write set) stagings,
// never against open transactions.
func (db *DB) BeginRead() ReadTxn {
	db.stats.readTxns.Add(1)
	db.m.readTxns.Inc()
	return ReadTxn{db: db, snap: db.store.Published()}
}

// Epoch returns the publication epoch the transaction pinned. Two
// ReadTxns with the same epoch observe bit-identical state.
func (t *ReadTxn) Epoch() uint64 { return t.snap.Epoch() }

// Get returns the snapshot's object with the given OID. The object is
// immutable — a deep copy taken at publication — and must not be
// modified. No event is logged (reads on the snapshot path are
// invisible to rules; use a writing transaction's Select for Chimera's
// event-generating select).
func (t *ReadTxn) Get(oid types.OID) (*object.Object, bool) {
	if t.done {
		return nil, false
	}
	return t.snap.Get(oid)
}

// Select returns the OIDs of the snapshot's extension of the named
// class (objects whose class is or specializes it), ascending. Unlike
// Txn.Select it logs no select events — snapshot reads never feed the
// Event Base.
func (t *ReadTxn) Select(class string) ([]types.OID, error) {
	if t.done {
		return nil, ErrNoTransaction
	}
	return t.snap.Select(class)
}

// Len returns the number of objects in the pinned snapshot.
func (t *ReadTxn) Len() int { return t.snap.Len() }

// Snapshot exposes the pinned snapshot itself — a cond.StoreView — so
// condition predicates (e.g. the shell's select-where filter) can
// evaluate against exactly the state the transaction observes. Returns
// nil once the transaction is closed.
func (t *ReadTxn) Snapshot() *object.Snapshot {
	if t.done {
		return nil
	}
	return t.snap
}

// Close invalidates the handle. Idempotent; the snapshot itself is
// unpinned when the ReadTxn value goes out of scope.
func (t *ReadTxn) Close() { t.done = true }

// Commit closes the transaction. A read txn has nothing to commit; this
// exists so session-shaped callers (the shell) can end either kind of
// transaction uniformly.
func (t *ReadTxn) Commit() error { t.done = true; return nil }

// Rollback closes the transaction (identical to Commit for reads).
func (t *ReadTxn) Rollback() error { t.done = true; return nil }

// Write-shaped operations: every one fails with ErrReadOnly, typed so
// callers routing mixed workloads can test with errors.Is.

// Create fails with ErrReadOnly.
func (t *ReadTxn) Create(string, map[string]types.Value) (types.OID, error) {
	return types.NilOID, ErrReadOnly
}

// Modify fails with ErrReadOnly.
func (t *ReadTxn) Modify(types.OID, string, types.Value) error { return ErrReadOnly }

// Delete fails with ErrReadOnly.
func (t *ReadTxn) Delete(types.OID) error { return ErrReadOnly }

// Specialize fails with ErrReadOnly.
func (t *ReadTxn) Specialize(types.OID, string) error { return ErrReadOnly }

// Generalize fails with ErrReadOnly.
func (t *ReadTxn) Generalize(types.OID, string) error { return ErrReadOnly }

// Raise fails with ErrReadOnly.
func (t *ReadTxn) Raise(string) error { return ErrReadOnly }
