package engine_test

// Deterministic wall-clock tests: the group committer's fsync-interval
// ticker runs against an injected clock.Source (DurabilityOptions.Clock),
// so a test decides exactly when the interval elapses instead of racing
// a real 5ms timer.

import (
	"testing"
	"time"

	"chimera/internal/clock"
	"chimera/internal/engine"
	"chimera/internal/metrics"
	"chimera/internal/storage"
)

// openManual opens a durable database over a manual clock and settles
// the committer: Open's initial checkpoint rings the committer's
// doorbell once, so the helper forces a full drain (SyncWAL) and lets
// any residual doorbell iteration run to completion before the test
// takes its baselines.
func openManual(t *testing.T, ival time.Duration) (*engine.DB, *clock.Manual, *storage.MemStore, *metrics.Registry) {
	t.Helper()
	man := clock.NewManual(time.Unix(0, 0))
	store := storage.NewMemStore()
	reg := metrics.NewRegistry()
	o := engine.DefaultOptions()
	o.Metrics = reg
	o.Durability = engine.DurabilityOptions{
		Store:        store,
		Fsync:        engine.FsyncInterval,
		SyncInterval: ival,
		Clock:        man,
	}
	db, err := engine.Open(o)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.SyncWAL(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(30 * time.Millisecond)
	return db, man, store, reg
}

// TestFsyncIntervalManualClock proves the interval policy is driven by
// the injected source: with manual time frozen, committed records stay
// in the committer's batch (no drain tick ever fires); one manual
// advance across the interval drains and syncs them.
func TestFsyncIntervalManualClock(t *testing.T) {
	db, man, store, reg := openManual(t, 5*time.Millisecond)
	fsyncs := reg.Counter("chimera_wal_fsyncs_total")
	f0, w0 := fsyncs.Value(), store.WALLen()

	if err := db.Run(func(tx *engine.Txn) error { return tx.Raise("ping") }); err != nil {
		t.Fatal(err)
	}
	// Real time passes, manual time does not: the drain tick must not
	// fire, so nothing reaches the store and nothing syncs.
	time.Sleep(30 * time.Millisecond)
	if n := fsyncs.Value(); n != f0 {
		t.Fatalf("fsyncs before manual advance = %d, want %d", n, f0)
	}
	if n := store.WALLen(); n != w0 {
		t.Fatalf("WAL grew before manual advance: %d -> %d bytes", w0, n)
	}

	man.Advance(5 * time.Millisecond)
	waitFor(t, func() bool { return fsyncs.Value() > f0 })
	if n := store.WALLen(); n <= w0 {
		t.Fatalf("WAL did not grow after synced drain: %d bytes", n)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestFsyncIntervalManualClockIdleTicks checks ticks with nothing new
// enqueued never sync: the committer sees no unsynced records and skips
// the fsync however often the (manual) ticker fires.
func TestFsyncIntervalManualClockIdleTicks(t *testing.T) {
	db, man, _, reg := openManual(t, 10*time.Millisecond)
	fsyncs := reg.Counter("chimera_wal_fsyncs_total")
	f0 := fsyncs.Value()

	if err := db.Run(func(tx *engine.Txn) error { return tx.Raise("a") }); err != nil {
		t.Fatal(err)
	}
	man.Advance(10 * time.Millisecond)
	waitFor(t, func() bool { return fsyncs.Value() == f0+1 })

	man.Advance(10 * time.Millisecond)
	man.Advance(10 * time.Millisecond)
	time.Sleep(30 * time.Millisecond)
	if n := fsyncs.Value(); n != f0+1 {
		t.Fatalf("fsyncs after idle ticks = %d, want %d", n, f0+1)
	}

	if err := db.Run(func(tx *engine.Txn) error { return tx.Raise("b") }); err != nil {
		t.Fatal(err)
	}
	man.Advance(10 * time.Millisecond)
	waitFor(t, func() bool { return fsyncs.Value() >= f0+2 })
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never reached")
		}
		time.Sleep(time.Millisecond)
	}
}
