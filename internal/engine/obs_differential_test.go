package engine

import (
	"fmt"
	"math/rand"
	"testing"

	"chimera/internal/calculus"
	"chimera/internal/clock"
	"chimera/internal/cond"
	"chimera/internal/event"
	"chimera/internal/metrics"
	"chimera/internal/rules"
	"chimera/internal/types"
)

// Differential testing of the observability layer: metrics and tracer
// enabled vs disabled must be observably inert — identical triggerings,
// identical rule executions, identical final database fingerprints —
// across the sequential, incremental, sharded (Workers > 1) and
// compacting configurations. The instrumentation may only watch the
// engine, never steer it.

// spanRecorder records the structured lifecycle spans and checks their
// invariants (balanced BlockStart/BlockEnd, transaction bracketing).
type spanRecorder struct {
	NopTracer
	blockStarts, blockEnds int
	sweepStarts, sweepEnds int
	txnStarts, txnEnds     int
	considered, executed   int
	triggeredSeq           []string // RuleTriggered names, in firing order
	compactedOccs          int
	compactedSegs          int
	maxDepth, depth        int
}

func (r *spanRecorder) BlockStart(events int) {
	r.blockStarts++
	r.depth++
	if r.depth > r.maxDepth {
		r.maxDepth = r.depth
	}
}
func (r *spanRecorder) BlockEnd(events int, triggered []string) {
	r.blockEnds++
	r.depth--
}
func (r *spanRecorder) SweepStart(at clock.Time) { r.sweepStarts++ }
func (r *spanRecorder) SweepEnd(examined, fired int) {
	r.sweepEnds++
}
func (r *spanRecorder) RuleTriggered(rule string, at clock.Time, events int) {
	r.triggeredSeq = append(r.triggeredSeq, fmt.Sprintf("%s@t%d", rule, at))
}
func (r *spanRecorder) Compaction(occs, segs int, wm clock.Time) {
	r.compactedOccs += occs
	r.compactedSegs += segs
}
func (r *spanRecorder) Considered(rule string, since, at clock.Time, bindings int) {
	r.considered++
}
func (r *spanRecorder) Executed(rule string)          { r.executed++ }
func (r *spanRecorder) TransactionStart(s clock.Time) { r.txnStarts++ }
func (r *spanRecorder) TransactionEnd(committed bool) { r.txnEnds++ }

// addFillerRules defines n deterministic immediate consuming rules over
// the diff schema whose conditions never hold: they trigger, get
// considered and detrigger without mutating anything, which (a) grows
// the pending batch past rules.ShardMinRules so Workers > 1 actually
// fans out, and (b) keeps every rule's consideration horizon moving so
// the consumption low-watermark advances and compaction retires
// segments.
func addFillerRules(t *testing.T, db *DB, n int) {
	t.Helper()
	create := calculus.P(event.Create("item"))
	mod := calculus.P(event.Modify("item", "n"))
	del := calculus.P(event.Delete("item"))
	neverTrue := cond.Formula{Atoms: []cond.Atom{
		cond.Class{Class: "item", Var: "S"},
		cond.Compare{L: cond.Attr{Var: "S", Attr: "n"}, Op: cond.CmpGt,
			R: cond.Const{V: types.Int(1 << 40)}},
	}}
	for i := 0; i < n; i++ {
		var e calculus.Expr
		switch i % 4 {
		case 0:
			e = calculus.Disj(create, mod)
		case 1:
			// Non-monotone: exercises the ∃t' sweep, not the boundary
			// collapse.
			e = calculus.Conj(create, calculus.Neg(del))
		case 2:
			e = calculus.Disj(create, calculus.P(event.External(fmt.Sprintf("sig%d", i%3))))
		default:
			e = calculus.Conj(mod, calculus.Neg(calculus.Prec(del, create)))
		}
		if err := db.DefineRule(
			rules.Def{Name: fmt.Sprintf("fill%02d", i), Event: e, Priority: 100 + i},
			Body{Condition: neverTrue},
		); err != nil {
			t.Fatal(err)
		}
	}
}

// obsConfigs are the engine configurations the inertness claim is
// pinned on.
var obsConfigs = []struct {
	name    string
	fillers int
	opts    Options
}{
	{"sequential", 0, Options{Support: rules.Options{UseFilter: true}}},
	{"incremental", 0, Options{Support: rules.Options{UseFilter: true, Incremental: true}}},
	// No filter so every non-triggered rule is examined each boundary:
	// with 40 fillers the batch exceeds ShardMinRules and the check
	// genuinely fans out across 4 workers.
	{"sharded", 40, Options{Support: rules.Options{Incremental: true, Workers: 4}}},
	{"compacting", 40, Options{Support: rules.Options{UseFilter: true, Incremental: true}, SegmentSize: 4}},
	{"no-compaction", 0, Options{Support: rules.Options{UseFilter: true}, DisableCompaction: true}},
}

// buildObsDB builds the differential database for one config,
// optionally instrumented.
func buildObsDB(t *testing.T, cfg Options, fillers int, reg *metrics.Registry, seed int64) *DB {
	t.Helper()
	cfg.Metrics = reg
	db := buildDiffDB(t, cfg, seed)
	if fillers > 0 {
		addFillerRules(t, db, fillers)
	}
	return db
}

func TestDifferentialInstrumentationInert(t *testing.T) {
	for _, cfg := range obsConfigs {
		cfg := cfg
		t.Run(cfg.name, func(t *testing.T) {
			for trial := 0; trial < 8; trial++ {
				seed := int64(4000 + trial)
				// Long enough that the 4-occurrence segments of the
				// compacting config roll over many times.
				ops := genWorkload(rand.New(rand.NewSource(seed)), 240)

				// Reference: no metrics, no tracer.
				plain := buildObsDB(t, cfg.opts, cfg.fillers, nil, seed)
				runDiffWorkload(t, plain, ops)

				// Tracer only.
				traced := buildObsDB(t, cfg.opts, cfg.fillers, nil, seed)
				tr1 := &spanRecorder{}
				traced.SetTracer(tr1)
				runDiffWorkload(t, traced, ops)

				// Metrics + tracer.
				reg := metrics.NewRegistry()
				full := buildObsDB(t, cfg.opts, cfg.fillers, reg, seed)
				tr2 := &spanRecorder{}
				full.SetTracer(tr2)
				runDiffWorkload(t, full, ops)

				// The observable outcomes must be bit-identical.
				fpPlain, fpTraced, fpFull := fingerprint(plain), fingerprint(traced), fingerprint(full)
				if fpPlain != fpTraced {
					t.Fatalf("trial %d: tracer perturbed the database:\n--- plain\n%s--- traced\n%s",
						trial, fpPlain, fpTraced)
				}
				if fpPlain != fpFull {
					t.Fatalf("trial %d: metrics perturbed the database:\n--- plain\n%s--- instrumented\n%s",
						trial, fpPlain, fpFull)
				}
				if plain.Stats() != traced.Stats() || plain.Stats() != full.Stats() {
					t.Fatalf("trial %d: engine counters diverged: plain %+v traced %+v full %+v",
						trial, plain.Stats(), traced.Stats(), full.Stats())
				}
				if a, b := plain.Support().Stats().Triggerings, full.Support().Stats().Triggerings; a != b {
					t.Fatalf("trial %d: triggerings diverged: %d vs %d", trial, a, b)
				}
				// Same triggered rules, in the same order, at the same
				// instants (tracer-only vs metrics+tracer).
				if fmt.Sprint(tr1.triggeredSeq) != fmt.Sprint(tr2.triggeredSeq) {
					t.Fatalf("trial %d: triggering sequences diverged:\n%v\n%v",
						trial, tr1.triggeredSeq, tr2.triggeredSeq)
				}

				checkSpanInvariants(t, trial, tr2, full)
				checkMetricsTruth(t, trial, reg, full)
			}
		})
	}
}

// checkSpanInvariants asserts the structural guarantees the Tracer
// contract documents.
func checkSpanInvariants(t *testing.T, trial int, tr *spanRecorder, db *DB) {
	t.Helper()
	if tr.blockStarts != tr.blockEnds {
		t.Fatalf("trial %d: unbalanced block spans: %d starts, %d ends",
			trial, tr.blockStarts, tr.blockEnds)
	}
	if tr.depth != 0 {
		t.Fatalf("trial %d: block span depth %d at quiescence", trial, tr.depth)
	}
	if tr.sweepStarts != tr.sweepEnds {
		t.Fatalf("trial %d: unbalanced sweep spans: %d starts, %d ends",
			trial, tr.sweepStarts, tr.sweepEnds)
	}
	if tr.txnStarts != tr.txnEnds {
		t.Fatalf("trial %d: unbalanced transactions: %d starts, %d ends",
			trial, tr.txnStarts, tr.txnEnds)
	}
	st := db.Stats()
	if int64(tr.blockEnds) != st.Blocks {
		t.Fatalf("trial %d: %d block spans, engine counted %d blocks",
			trial, tr.blockEnds, st.Blocks)
	}
	if int64(tr.considered) != st.Considerations {
		t.Fatalf("trial %d: %d Considered spans, engine counted %d",
			trial, tr.considered, st.Considerations)
	}
	if int64(tr.executed) != st.RuleExecutions {
		t.Fatalf("trial %d: %d Executed spans, engine counted %d",
			trial, tr.executed, st.RuleExecutions)
	}
}

// checkMetricsTruth asserts the registry reports exactly what the
// engine's own counters saw — metrics must tell the truth, not an
// approximation.
func checkMetricsTruth(t *testing.T, trial int, reg *metrics.Registry, db *DB) {
	t.Helper()
	s := reg.Snapshot()
	st := db.Stats()
	ts := db.Support().Stats()
	for _, c := range []struct {
		name string
		want int64
	}{
		{"chimera_engine_transactions_total", st.Transactions},
		{"chimera_engine_blocks_total", st.Blocks},
		{"chimera_engine_events_total", st.Events},
		{"chimera_engine_considerations_total", st.Considerations},
		{"chimera_engine_executions_total", st.RuleExecutions},
		{"chimera_eb_appends_total", st.Events},
		{"chimera_trigger_checks_total", ts.Checks},
		{"chimera_trigger_rules_examined_total", ts.RulesExamined},
		{"chimera_trigger_rules_skipped_total", ts.RulesSkipped},
		{"chimera_trigger_ts_evals_total", ts.TsEvaluations},
		{"chimera_trigger_triggerings_total", ts.Triggerings},
	} {
		if got := s.Counters[c.name]; got != c.want {
			t.Fatalf("trial %d: %s = %d, engine saw %d", trial, c.name, got, c.want)
		}
	}
	if got := s.Counters["chimera_engine_commits_total"] + s.Counters["chimera_engine_rollbacks_total"]; got != st.Transactions {
		t.Fatalf("trial %d: commits+rollbacks %d != transactions %d", trial, got, st.Transactions)
	}
}

// TestShardedAndCompactingPathsExercised pins that the differential
// configurations above actually reach the machinery they claim to
// cover: the sharded check fans out and the compacting config retires
// segments. Without this the inertness suite could silently degrade
// into five copies of the sequential test.
func TestShardedAndCompactingPathsExercised(t *testing.T) {
	seed := int64(4000)
	ops := genWorkload(rand.New(rand.NewSource(seed)), 240)

	regShard := metrics.NewRegistry()
	sharded := buildObsDB(t, Options{Support: rules.Options{Incremental: true, Workers: 4}}, 40, regShard, seed)
	runDiffWorkload(t, sharded, ops)
	if n := regShard.Snapshot().Histograms["chimera_trigger_shard_rules"].Count; n == 0 {
		t.Fatal("sharded config never fanned out (shard histogram empty)")
	}
	if n := regShard.Snapshot().Histograms["chimera_trigger_merge_wait_ns"].Count; n == 0 {
		t.Fatal("sharded config recorded no merge waits")
	}

	regComp := metrics.NewRegistry()
	compacting := buildObsDB(t, Options{Support: rules.Options{UseFilter: true, Incremental: true}, SegmentSize: 4}, 40, regComp, seed)
	tr := &spanRecorder{}
	compacting.SetTracer(tr)
	runDiffWorkload(t, compacting, ops)
	snap := regComp.Snapshot()
	if snap.Counters["chimera_eb_occurrences_retired_total"] == 0 {
		t.Fatal("compacting config retired nothing (watermark never advanced?)")
	}
	if tr.compactedOccs != int(snap.Counters["chimera_eb_occurrences_retired_total"]) {
		t.Fatalf("Compaction spans saw %d occurrences retired, metrics saw %d",
			tr.compactedOccs, snap.Counters["chimera_eb_occurrences_retired_total"])
	}
	if tr.compactedSegs != int(snap.Counters["chimera_eb_segments_retired_total"]) {
		t.Fatalf("Compaction spans saw %d segments retired, metrics saw %d",
			tr.compactedSegs, snap.Counters["chimera_eb_segments_retired_total"])
	}
	if snap.Counters["chimera_sweep_advances_total"] == 0 {
		t.Fatal("incremental config never advanced a sweeper")
	}
}
