package engine

import (
	"fmt"
	"math/rand"
	"testing"

	"chimera/internal/act"
	"chimera/internal/calculus"
	"chimera/internal/cond"
	"chimera/internal/event"
	"chimera/internal/rules"
	"chimera/internal/schema"
	"chimera/internal/types"
)

// Differential testing: the V(E) filter and the naive Trigger Support
// must produce byte-identical databases on identical workloads — the
// optimization may only change how much work triggering does, never what
// the rules do. (The BoundaryOnly ablation is intentionally NOT
// equivalent and is excluded.)

// diffWorkload drives a scripted random workload against a database.
type diffOp struct {
	kind int // 0 create, 1 modify, 2 delete, 3 endline, 4 raise
	arg  int64
}

func genWorkload(r *rand.Rand, n int) []diffOp {
	ops := make([]diffOp, n)
	for i := range ops {
		ops[i] = diffOp{kind: r.Intn(5), arg: int64(r.Intn(100))}
	}
	return ops
}

func buildDiffDB(t *testing.T, opts Options, seed int64) *DB {
	t.Helper()
	db := New(opts)
	if err := db.DefineClass("item",
		schema.Attribute{Name: "n", Kind: types.KindInt},
		schema.Attribute{Name: "cap", Kind: types.KindInt}); err != nil {
		t.Fatal(err)
	}
	if err := db.DefineClass("note",
		schema.Attribute{Name: "n", Kind: types.KindInt}); err != nil {
		t.Fatal(err)
	}
	// Rule 1: clamp items over capacity on create/modify.
	evt := calculus.Disj(
		calculus.P(event.Create("item")),
		calculus.P(event.Modify("item", "n")))
	if err := db.DefineRule(
		rules.Def{Name: "clamp", Target: "item", Event: evt, Priority: 1},
		Body{
			Condition: cond.Formula{Atoms: []cond.Atom{
				cond.Class{Class: "item", Var: "S"},
				cond.Occurred{Event: calculus.DisjI(
					calculus.P(event.Create("item")),
					calculus.P(event.Modify("item", "n"))), Var: "S"},
				cond.Compare{L: cond.Attr{Var: "S", Attr: "n"}, Op: cond.CmpGt,
					R: cond.Attr{Var: "S", Attr: "cap"}},
			}},
			Action: act.Action{Statements: []act.Statement{
				act.Modify{Class: "item", Attr: "n", Var: "S",
					Value: cond.Attr{Var: "S", Attr: "cap"}},
			}},
		}); err != nil {
		t.Fatal(err)
	}
	// Rule 2 (deferred, composite with negation): a note when items were
	// created but none deleted afterwards.
	if err := db.DefineRule(
		rules.Def{Name: "audit", Coupling: rules.Deferred, Priority: 2,
			Event: calculus.Conj(
				calculus.P(event.Create("item")),
				calculus.Neg(calculus.Prec(
					calculus.P(event.Create("item")),
					calculus.P(event.Delete("item")))))},
		Body{
			Condition: cond.Formula{Atoms: []cond.Atom{
				cond.Occurred{Event: calculus.P(event.Create("item")), Var: "X"},
			}},
			Action: act.Action{Statements: []act.Statement{
				act.Create{Class: "note", Once: true, Vals: map[string]cond.Term{
					"n": cond.Const{V: types.Int(1)}}},
			}},
		}); err != nil {
		t.Fatal(err)
	}
	// Rule 3: instance sequence create <= modify(n) logs per object.
	if err := db.DefineRule(
		rules.Def{Name: "seq", Priority: 3,
			Event: calculus.PrecI(calculus.P(event.Create("item")), calculus.P(event.Modify("item", "n")))},
		Body{
			Condition: cond.Formula{Atoms: []cond.Atom{
				cond.Occurred{Event: calculus.PrecI(
					calculus.P(event.Create("item")), calculus.P(event.Modify("item", "n"))), Var: "X"},
			}},
			Action: act.Action{Statements: []act.Statement{
				act.Create{Class: "note", Once: true, Vals: map[string]cond.Term{
					"n": cond.Const{V: types.Int(2)}}},
			}},
		}); err != nil {
		t.Fatal(err)
	}
	_ = seed
	return db
}

func runDiffWorkload(t *testing.T, db *DB, ops []diffOp) {
	t.Helper()
	var live []types.OID
	tx, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	for i, op := range ops {
		switch op.kind {
		case 0:
			oid, err := tx.Create("item", map[string]types.Value{
				"n": types.Int(op.arg), "cap": types.Int(50)})
			if err != nil {
				t.Fatal(err)
			}
			live = append(live, oid)
		case 1:
			if len(live) > 0 {
				oid := live[int(op.arg)%len(live)]
				if _, ok := tx.Get(oid); ok {
					if err := tx.Modify(oid, "n", types.Int(op.arg)); err != nil {
						t.Fatal(err)
					}
				}
			}
		case 2:
			if len(live) > 0 {
				idx := int(op.arg) % len(live)
				oid := live[idx]
				if _, ok := tx.Get(oid); ok {
					if err := tx.Delete(oid); err != nil {
						t.Fatal(err)
					}
				}
				live = append(live[:idx], live[idx+1:]...)
			}
		case 3:
			if err := tx.EndLine(); err != nil {
				t.Fatal(err)
			}
			// Occasionally split into a fresh transaction.
			if op.arg%3 == 0 {
				if err := tx.Commit(); err != nil {
					t.Fatal(err)
				}
				tx, err = db.Begin()
				if err != nil {
					t.Fatal(err)
				}
				live = nil
				for _, class := range []string{"item"} {
					oids, _ := db.Store().Select(class)
					live = append(live, oids...)
				}
			}
		case 4:
			if err := tx.Raise(fmt.Sprintf("sig%d", op.arg%3)); err != nil {
				t.Fatal(err)
			}
		}
		_ = i
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
}

// fingerprint renders the full database state deterministically.
func fingerprint(db *DB) string {
	out := ""
	for _, class := range db.Schema().Names() {
		oids, _ := db.Store().Select(class)
		for _, oid := range oids {
			if o, ok := db.Store().Get(oid); ok && o.Class().Name() == class {
				out += o.String() + "\n"
			}
		}
	}
	return out
}

func TestDifferentialNaiveVsOptimized(t *testing.T) {
	for trial := 0; trial < 25; trial++ {
		seed := int64(1000 + trial)
		ops := genWorkload(rand.New(rand.NewSource(seed)), 60)

		naive := buildDiffDB(t, Options{Support: rules.Options{}}, seed)
		runDiffWorkload(t, naive, ops)

		opt := buildDiffDB(t, Options{Support: rules.Options{UseFilter: true}}, seed)
		runDiffWorkload(t, opt, ops)

		mentioned := buildDiffDB(t, Options{Support: rules.Options{
			UseFilter: true, FilterMode: rules.FilterMentioned}}, seed)
		runDiffWorkload(t, mentioned, ops)

		fpNaive, fpOpt, fpMen := fingerprint(naive), fingerprint(opt), fingerprint(mentioned)
		if fpNaive != fpOpt {
			t.Fatalf("trial %d: naive and V(E)-filtered databases diverged:\n--- naive\n%s--- optimized\n%s",
				trial, fpNaive, fpOpt)
		}
		if fpNaive != fpMen {
			t.Fatalf("trial %d: mentioned-filter database diverged", trial)
		}
		if naive.Stats().RuleExecutions != opt.Stats().RuleExecutions {
			t.Fatalf("trial %d: rule executions diverged: %d vs %d",
				trial, naive.Stats().RuleExecutions, opt.Stats().RuleExecutions)
		}
	}
}
