package engine

import (
	"testing"

	"chimera/internal/calculus"
	"chimera/internal/cond"
	"chimera/internal/event"
	"chimera/internal/rules"
	"chimera/internal/schema"
	"chimera/internal/types"
)

// driveLongTxn runs one long transaction (lines × one create each)
// against a single always-considered rule and returns the Event Base
// statistics observed just before commit.
func driveLongTxn(t *testing.T, consumption rules.Consumption, disable bool, lines int) (appended, live, retired int) {
	t.Helper()
	db := New(Options{
		Support:           rules.Options{UseFilter: true, Incremental: true},
		DisableCompaction: disable,
	})
	if err := db.DefineClass("item",
		schema.Attribute{Name: "n", Kind: types.KindInt},
		schema.Attribute{Name: "cap", Kind: types.KindInt}); err != nil {
		t.Fatal(err)
	}
	// Fires on every create, condition never satisfied: each line is one
	// consideration, so a consuming rule's horizon tracks the line rate.
	err := db.DefineRule(
		rules.Def{Name: "watch", Target: "item", Consumption: consumption,
			Event: calculus.P(event.Create("item"))},
		Body{Condition: cond.Formula{Atoms: []cond.Atom{
			cond.Class{Class: "item", Var: "S"},
			cond.Compare{L: cond.Attr{Var: "S", Attr: "n"}, Op: cond.CmpGt,
				R: cond.Attr{Var: "S", Attr: "cap"}},
		}}})
	if err != nil {
		t.Fatal(err)
	}
	tx, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < lines; i++ {
		if _, err := tx.Create("item", map[string]types.Value{
			"n": types.Int(1), "cap": types.Int(100),
		}); err != nil {
			t.Fatal(err)
		}
		if err := tx.EndLine(); err != nil {
			t.Fatal(err)
		}
	}
	b := tx.Base()
	appended, live, retired = b.Appended(), b.Len(), b.Retired()
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	return appended, live, retired
}

// TestLongTransactionBoundedMemory: with an all-consuming rule set the
// engine's per-block compaction keeps the live Event Base bounded by the
// rule horizon (a couple of segments), not by transaction length.
func TestLongTransactionBoundedMemory(t *testing.T) {
	const lines = 1500 // ~6 default-size segments
	appended, live, retired := driveLongTxn(t, rules.Consuming, false, lines)
	if appended != lines {
		t.Fatalf("appended = %d, want %d", appended, lines)
	}
	if retired == 0 {
		t.Fatal("long consuming transaction retired nothing")
	}
	// The live window is at most the segment being filled plus the sealed
	// segment the watermark has not fully passed.
	if max := 2 * event.DefaultSegmentSize; live > max {
		t.Fatalf("live occurrences = %d, want ≤ %d (bounded by the rule horizon)", live, max)
	}
	if live+retired != appended {
		t.Fatalf("live %d + retired %d != appended %d", live, retired, appended)
	}
}

// TestLongTransactionPreservingPins: a preserving rule keeps the whole
// transaction visible — compaction must retire nothing.
func TestLongTransactionPreservingPins(t *testing.T) {
	const lines = 600
	appended, live, retired := driveLongTxn(t, rules.Preserving, false, lines)
	if retired != 0 || live != appended {
		t.Fatalf("preserving transaction: appended=%d live=%d retired=%d, want full retention",
			appended, live, retired)
	}
}

// TestDisableCompactionRetainsLog: the opt-out keeps the complete log
// even for consuming rule sets.
func TestDisableCompactionRetainsLog(t *testing.T) {
	const lines = 600
	appended, live, retired := driveLongTxn(t, rules.Consuming, true, lines)
	if retired != 0 || live != appended {
		t.Fatalf("DisableCompaction: appended=%d live=%d retired=%d, want full retention",
			appended, live, retired)
	}
}
