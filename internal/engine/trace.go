package engine

import (
	"fmt"
	"io"

	"chimera/internal/clock"
)

// Tracer observes the rule-processing loop: block boundaries,
// triggerings, considerations and executions. A tracer makes the
// Section 5 machinery visible — which non-interruptible block generated
// which triggering, and what each consideration decided. All methods are
// called synchronously from the engine; implementations must be fast and
// must not call back into the database.
type Tracer interface {
	// BlockEnd fires when a non-interruptible block closes, with the
	// number of occurrences it generated and the rules it newly
	// triggered.
	BlockEnd(events int, triggered []string)
	// Considered fires at every rule consideration with the event-formula
	// window and the number of satisfying bindings (the condition failed
	// when bindings == 0).
	Considered(rule string, since, at clock.Time, bindings int)
	// Executed fires after a rule's action ran.
	Executed(rule string)
	// TransactionEnd fires at commit (committed=true) or rollback.
	TransactionEnd(committed bool)
}

// SetTracer installs (or removes, with nil) the tracer.
func (db *DB) SetTracer(tr Tracer) { db.tracer = tr }

// WriterTracer renders trace events as text lines, one per event.
type WriterTracer struct {
	W io.Writer
}

// BlockEnd implements Tracer.
func (t WriterTracer) BlockEnd(events int, triggered []string) {
	if len(triggered) > 0 {
		fmt.Fprintf(t.W, "trace: block end (%d events) triggered %v\n", events, triggered)
		return
	}
	fmt.Fprintf(t.W, "trace: block end (%d events)\n", events)
}

// Considered implements Tracer.
func (t WriterTracer) Considered(rule string, since, at clock.Time, bindings int) {
	verdict := "condition holds"
	if bindings == 0 {
		verdict = "condition fails"
	}
	fmt.Fprintf(t.W, "trace: consider %s over (t%d, t%d]: %s (%d bindings)\n",
		rule, since, at, verdict, bindings)
}

// Executed implements Tracer.
func (t WriterTracer) Executed(rule string) {
	fmt.Fprintf(t.W, "trace: execute %s\n", rule)
}

// TransactionEnd implements Tracer.
func (t WriterTracer) TransactionEnd(committed bool) {
	if committed {
		fmt.Fprintln(t.W, "trace: commit")
		return
	}
	fmt.Fprintln(t.W, "trace: rollback")
}
