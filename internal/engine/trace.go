package engine

import (
	"fmt"
	"io"

	"chimera/internal/clock"
)

// Tracer observes the rule-processing loop as structured lifecycle
// spans: transaction boundaries, non-interruptible block close spans
// (BlockStart brackets the triggering determination and compaction that
// run while a block seals; BlockEnd closes the span), the triggering
// sweep, compaction, and per-rule triggering/consideration/execution
// events. A tracer makes the Section 5 machinery visible — which block
// generated which triggering, what each consideration decided, and what
// the generational Event Base retired.
//
// All hooks are called synchronously from the engine; implementations
// must be fast and must not call back into the database. Every call
// site is guarded by a single nil check, so a database without a tracer
// pays one predictable branch per span — nothing else. Instrumentation
// is observably inert: the differential suite pins traced and untraced
// runs to identical triggerings and final states.
//
// BlockStart and BlockEnd are strictly balanced: every block close
// emits exactly one of each, in order, with the same occurrence count
// (the fuzz harness asserts this invariant on arbitrary workloads).
// Embed NopTracer to implement only the hooks of interest.
type Tracer interface {
	// BlockStart fires when a non-interruptible block begins closing,
	// with the number of occurrences it generated. The triggering
	// determination and compaction happen inside the span.
	BlockStart(events int)
	// BlockEnd closes the block span, with the occurrence count and the
	// rules the block newly triggered.
	BlockEnd(events int, triggered []string)
	// SweepStart fires before the triggering determination of a block
	// boundary, at the check instant.
	SweepStart(at clock.Time)
	// SweepEnd fires after the determination, with the number of rules
	// examined and the number newly triggered.
	SweepEnd(examined, fired int)
	// RuleTriggered fires for each rule the determination newly
	// triggered: the activation instant and the net effect driving it —
	// the number of occurrences in the rule's relevant window (since its
	// last consideration) up to the activation.
	RuleTriggered(rule string, at clock.Time, events int)
	// Compaction fires when the Event Base retires segments below the
	// consumption low-watermark (only when something was retired).
	Compaction(occurrences, segments int, watermark clock.Time)
	// Considered fires at every rule consideration with the event-formula
	// window and the number of satisfying bindings (the condition failed
	// when bindings == 0).
	Considered(rule string, since, at clock.Time, bindings int)
	// Executed fires after a rule's action ran.
	Executed(rule string)
	// TransactionStart fires when a transaction opens, with its start
	// instant.
	TransactionStart(start clock.Time)
	// TransactionEnd fires at commit (committed=true) or rollback.
	TransactionEnd(committed bool)
}

// SetTracer installs (or removes, with nil) the tracer.
func (db *DB) SetTracer(tr Tracer) { db.tracer = tr }

// NopTracer implements every Tracer hook as a no-op. Embed it to build
// tracers that care about a subset of the lifecycle.
type NopTracer struct{}

// BlockStart implements Tracer.
func (NopTracer) BlockStart(int) {}

// BlockEnd implements Tracer.
func (NopTracer) BlockEnd(int, []string) {}

// SweepStart implements Tracer.
func (NopTracer) SweepStart(clock.Time) {}

// SweepEnd implements Tracer.
func (NopTracer) SweepEnd(int, int) {}

// RuleTriggered implements Tracer.
func (NopTracer) RuleTriggered(string, clock.Time, int) {}

// Compaction implements Tracer.
func (NopTracer) Compaction(int, int, clock.Time) {}

// Considered implements Tracer.
func (NopTracer) Considered(string, clock.Time, clock.Time, int) {}

// Executed implements Tracer.
func (NopTracer) Executed(string) {}

// TransactionStart implements Tracer.
func (NopTracer) TransactionStart(clock.Time) {}

// TransactionEnd implements Tracer.
func (NopTracer) TransactionEnd(bool) {}

// WriterTracer renders every span type as a text line.
type WriterTracer struct {
	W io.Writer
	// Verbose additionally renders the span-level plumbing (block start,
	// sweep start/end, per-rule triggerings); the default renders the
	// compact stream the worked examples and docs show.
	Verbose bool
}

// BlockStart implements Tracer.
func (t WriterTracer) BlockStart(events int) {
	if t.Verbose {
		fmt.Fprintf(t.W, "trace: block start (%d events)\n", events)
	}
}

// BlockEnd implements Tracer.
func (t WriterTracer) BlockEnd(events int, triggered []string) {
	if len(triggered) > 0 {
		fmt.Fprintf(t.W, "trace: block end (%d events) triggered %v\n", events, triggered)
		return
	}
	fmt.Fprintf(t.W, "trace: block end (%d events)\n", events)
}

// SweepStart implements Tracer.
func (t WriterTracer) SweepStart(at clock.Time) {
	if t.Verbose {
		fmt.Fprintf(t.W, "trace: sweep start at t%d\n", at)
	}
}

// SweepEnd implements Tracer.
func (t WriterTracer) SweepEnd(examined, fired int) {
	if t.Verbose {
		fmt.Fprintf(t.W, "trace: sweep end (%d rules examined, %d fired)\n", examined, fired)
	}
}

// RuleTriggered implements Tracer.
func (t WriterTracer) RuleTriggered(rule string, at clock.Time, events int) {
	if t.Verbose {
		fmt.Fprintf(t.W, "trace: triggered %s at t%d (%d events in window)\n", rule, at, events)
	}
}

// Compaction implements Tracer.
func (t WriterTracer) Compaction(occurrences, segments int, watermark clock.Time) {
	fmt.Fprintf(t.W, "trace: compacted %d events (%d segments) at or below t%d\n",
		occurrences, segments, watermark)
}

// Considered implements Tracer.
func (t WriterTracer) Considered(rule string, since, at clock.Time, bindings int) {
	verdict := "condition holds"
	if bindings == 0 {
		verdict = "condition fails"
	}
	fmt.Fprintf(t.W, "trace: consider %s over (t%d, t%d]: %s (%d bindings)\n",
		rule, since, at, verdict, bindings)
}

// Executed implements Tracer.
func (t WriterTracer) Executed(rule string) {
	fmt.Fprintf(t.W, "trace: execute %s\n", rule)
}

// TransactionStart implements Tracer.
func (t WriterTracer) TransactionStart(start clock.Time) {
	if t.Verbose {
		fmt.Fprintf(t.W, "trace: begin at t%d\n", start)
	}
}

// TransactionEnd implements Tracer.
func (t WriterTracer) TransactionEnd(committed bool) {
	if committed {
		fmt.Fprintln(t.W, "trace: commit")
		return
	}
	fmt.Fprintln(t.W, "trace: rollback")
}
