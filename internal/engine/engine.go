// Package engine implements the Chimera execution machinery of Section 2
// and Section 5: the Block Executor that runs non-interruptible execution
// blocks (user transaction lines and rule actions), the Event Handler
// hand-off that stores fresh occurrences into the Occurred-Events
// structure and wakes the Trigger Support, and the rule-processing loop
// that considers and executes triggered rules by priority with
// immediate/deferred EC coupling and consuming/preserving event
// consumption.
package engine

import (
	"errors"
	"fmt"

	"chimera/internal/act"
	"chimera/internal/clock"
	"chimera/internal/cond"
	"chimera/internal/event"
	"chimera/internal/metrics"
	"chimera/internal/object"
	"chimera/internal/rules"
	"chimera/internal/schema"
	"chimera/internal/types"
)

// ErrNoTransaction is returned by transactional operations outside a
// transaction.
var ErrNoTransaction = errors.New("engine: no active transaction")

// ErrRuleLimit is returned when a rule cascade exceeds the configured
// execution budget — the engine's guard against non-terminating rule
// sets.
var ErrRuleLimit = errors.New("engine: rule execution limit exceeded")

// Body is the condition/action pair of a rule (the triggering state is
// owned by the rules package).
type Body struct {
	Condition cond.Formula
	Action    act.Action
}

// Options configures a database.
type Options struct {
	// Support configures the Trigger Support (V(E) filter on by default
	// via DefaultOptions).
	Support rules.Options
	// MaxRuleExecutions bounds rule executions per transaction; 0 means
	// the default of 10000.
	MaxRuleExecutions int
	// DisableCompaction keeps every occurrence of a transaction in the
	// Event Base instead of retiring segments below the consumption
	// low-watermark at block boundaries. Compaction is semantically
	// transparent (it only drops occurrences no defined rule's window can
	// reach); disabling it trades bounded memory for a complete log —
	// useful for the differential reference and for ad-hoc inspection of
	// Txn.Base over windows older than every rule's horizon.
	DisableCompaction bool
	// SegmentSize overrides the Event Base segment size (occurrences per
	// generation); 0 uses event.DefaultSegmentSize. Small sizes exercise
	// segment boundaries and compaction in tests; production
	// configurations should leave the default.
	SegmentSize int
	// Metrics, when non-nil, is the registry the engine and every layer
	// under it (Event Base, Trigger Support, incremental sweep) report
	// into; read it back with DB.Snapshot. nil (the default) disables
	// instrumentation entirely: every report site reduces to one
	// branch-predictable nil check with no allocation and no atomic
	// operation, and the differential suite pins enabled vs disabled
	// runs to identical semantics (see DESIGN.md §9).
	Metrics *metrics.Registry
}

// DefaultOptions enables the paper's static optimization and the formal
// triggering semantics, plus the incremental ∃t' sweep, the
// GOMAXPROCS-sharded triggering determination, and the shared trigger
// plan with memoized evaluation (all semantically transparent; see
// DESIGN.md §7 and §10).
func DefaultOptions() Options {
	return Options{Support: rules.Options{
		UseFilter:   true,
		Incremental: true,
		SharedPlan:  true,
		Workers:     rules.DefaultWorkers(),
	}}
}

// Stats aggregates engine-level counters for the benchmark harness.
type Stats struct {
	Transactions   int64
	Blocks         int64
	Events         int64
	RuleExecutions int64
	Considerations int64
}

// DB is a Chimera database: schema, object store, rule set, and the
// machinery to run transactions against them.
type DB struct {
	clock   *clock.Clock
	schema  *schema.Schema
	store   *object.Store
	support *rules.Support
	bodies  map[string]Body
	opts    Options
	stats   Stats
	tracer  Tracer
	txn     *Txn
	// m and baseMetrics are the resolved instrument sets (zero values
	// when Options.Metrics is nil); baseMetrics is installed on each
	// transaction's Event Base at Begin.
	m           engineMetrics
	baseMetrics event.BaseMetrics
}

// New creates an empty database with the given options.
func New(opts Options) *DB {
	if opts.MaxRuleExecutions == 0 {
		opts.MaxRuleExecutions = 10000
	}
	if opts.Metrics != nil && opts.Support.Metrics == nil {
		opts.Support.Metrics = rules.NewSupportMetrics(opts.Metrics)
	}
	s := schema.New()
	db := &DB{
		clock:       clock.New(),
		schema:      s,
		store:       object.NewStore(s),
		support:     rules.NewSupport(nil, opts.Support),
		bodies:      make(map[string]Body),
		opts:        opts,
		m:           newEngineMetrics(opts.Metrics),
		baseMetrics: event.NewBaseMetrics(opts.Metrics),
	}
	return db
}

// Schema exposes the class catalog for definition and lookup.
func (db *DB) Schema() *schema.Schema { return db.schema }

// Store exposes the object store (read-only use outside transactions).
func (db *DB) Store() *object.Store { return db.store }

// Clock exposes the logical clock.
func (db *DB) Clock() *clock.Clock { return db.clock }

// Support exposes the Trigger Support (for statistics and inspection).
func (db *DB) Support() *rules.Support { return db.support }

// Stats returns the engine counters.
func (db *DB) Stats() Stats { return db.stats }

// DefineClass registers a root class.
func (db *DB) DefineClass(name string, attrs ...schema.Attribute) error {
	_, err := db.schema.Define(name, attrs...)
	return err
}

// DefineSubclass registers a class specializing parent.
func (db *DB) DefineSubclass(name, parent string, attrs ...schema.Attribute) error {
	_, err := db.schema.DefineSub(name, parent, attrs...)
	return err
}

// DefineRule registers a trigger: its event expression and modes go to
// the Trigger Support, its condition and action are kept for
// consideration time. Rules may be defined at any time outside a
// transaction.
func (db *DB) DefineRule(def rules.Def, body Body) error {
	if db.txn != nil {
		return errors.New("engine: cannot define rules inside a transaction")
	}
	for _, t := range eventClasses(def) {
		if _, ok := db.schema.Class(t); !ok {
			return fmt.Errorf("engine: rule %q mentions unknown class %q", def.Name, t)
		}
	}
	if err := db.support.Define(def); err != nil {
		return err
	}
	db.bodies[def.Name] = body
	return nil
}

func eventClasses(def rules.Def) []string {
	seen := make(map[string]bool)
	var out []string
	if def.Event == nil {
		return nil
	}
	for _, t := range defPrimitives(def) {
		if t.Op == event.OpExternal {
			continue // signal names are free-form, not schema classes
		}
		if !seen[t.Class] {
			seen[t.Class] = true
			out = append(out, t.Class)
		}
	}
	return out
}

func defPrimitives(def rules.Def) []event.Type {
	if def.Event == nil {
		return nil
	}
	return calculusPrimitives(def)
}

// DropRule removes a rule.
func (db *DB) DropRule(name string) error {
	if err := db.support.Drop(name); err != nil {
		return err
	}
	delete(db.bodies, name)
	return nil
}

// Txn is an open transaction: a sequence of non-interruptible blocks
// (transaction lines) followed by Commit or Rollback.
type Txn struct {
	db      *DB
	base    *event.Base
	mark    object.Mark
	pending []event.Occurrence
	execs   int
	done    bool
}

// Begin opens a transaction. The Event Base starts empty (it is the log
// of occurrences "since the beginning of the transaction") and every
// rule's horizon resets to the transaction start.
func (db *DB) Begin() (*Txn, error) {
	if db.txn != nil {
		return nil, errors.New("engine: transaction already open")
	}
	base := event.NewBaseSize(db.opts.SegmentSize)
	base.SetMetrics(db.baseMetrics)
	t := &Txn{
		db:   db,
		base: base,
		mark: db.store.MarkUndo(),
	}
	db.support.Rebind(t.base)
	db.support.BeginTransaction(db.clock.Now())
	db.txn = t
	db.stats.Transactions++
	db.m.transactions.Inc()
	if db.tracer != nil {
		db.tracer.TransactionStart(db.clock.Now())
	}
	return t, nil
}

// log stamps and stores one occurrence (Event Handler duty).
func (t *Txn) log(ty event.Type, oid types.OID) error {
	occ, err := t.base.Append(ty, oid, t.db.clock.Tick())
	if err != nil {
		return err
	}
	t.pending = append(t.pending, occ)
	t.db.stats.Events++
	t.db.m.events.Inc()
	return nil
}

func (t *Txn) check() error {
	if t == nil || t.done {
		return ErrNoTransaction
	}
	if t.db.txn != t {
		return ErrNoTransaction
	}
	return nil
}

// Create instantiates an object and logs create(class).
func (t *Txn) Create(class string, vals map[string]types.Value) (types.OID, error) {
	if err := t.check(); err != nil {
		return types.NilOID, err
	}
	oid, err := t.db.store.Create(class, vals)
	if err != nil {
		return types.NilOID, err
	}
	return oid, t.log(event.Create(class), oid)
}

// Modify updates one attribute and logs modify(class.attr).
func (t *Txn) Modify(oid types.OID, attr string, v types.Value) error {
	if err := t.check(); err != nil {
		return err
	}
	o, ok := t.db.store.Get(oid)
	if !ok {
		return fmt.Errorf("engine: no object %s", oid)
	}
	if err := t.db.store.Modify(oid, attr, v); err != nil {
		return err
	}
	return t.log(event.Modify(o.Class().Name(), attr), oid)
}

// Delete removes an object and logs delete(class).
func (t *Txn) Delete(oid types.OID) error {
	if err := t.check(); err != nil {
		return err
	}
	o, ok := t.db.store.Get(oid)
	if !ok {
		return fmt.Errorf("engine: no object %s", oid)
	}
	class := o.Class().Name()
	if err := t.db.store.Delete(oid); err != nil {
		return err
	}
	return t.log(event.Delete(class), oid)
}

// Specialize moves an object into a subclass and logs specialize(sub).
func (t *Txn) Specialize(oid types.OID, sub string) error {
	if err := t.check(); err != nil {
		return err
	}
	if err := t.db.store.Specialize(oid, sub); err != nil {
		return err
	}
	return t.log(event.T(event.OpSpecialize, sub), oid)
}

// Generalize moves an object into a superclass and logs
// generalize(super).
func (t *Txn) Generalize(oid types.OID, super string) error {
	if err := t.check(); err != nil {
		return err
	}
	if err := t.db.store.Generalize(oid, super); err != nil {
		return err
	}
	return t.log(event.T(event.OpGeneralize, super), oid)
}

// Raise signals an external event (an extension beyond the paper,
// mirroring HiPAC's external events): it logs an external(signal)
// occurrence affecting no object. Rules listen with the same calculus —
// "events external(backup) + -modify(stock.quantity)".
func (t *Txn) Raise(signal string) error {
	if err := t.check(); err != nil {
		return err
	}
	if signal == "" {
		return errors.New("engine: empty signal name")
	}
	return t.log(event.External(signal), types.NilOID)
}

// Select queries the live extension of a class and logs select(class)
// occurrences for the returned objects.
func (t *Txn) Select(class string) ([]types.OID, error) {
	if err := t.check(); err != nil {
		return nil, err
	}
	oids, err := t.db.store.Select(class)
	if err != nil {
		return nil, err
	}
	for _, oid := range oids {
		if err := t.log(event.T(event.OpSelect, class), oid); err != nil {
			return nil, err
		}
	}
	return oids, nil
}

// Get reads an object without generating events.
func (t *Txn) Get(oid types.OID) (*object.Object, bool) {
	if err := t.check(); err != nil {
		return nil, false
	}
	return t.db.store.Get(oid)
}

// Base exposes the transaction's Event Base (read-only use). Unless
// Options.DisableCompaction is set, windows reaching below every rule's
// horizon (the consumption low-watermark) may observe only the live
// remainder of the log — compaction retires segments no rule can see.
func (t *Txn) Base() *event.Base { return t.base }

// EndLine closes the current non-interruptible block (a user transaction
// line): the Event Handler announces the block's occurrences, the
// Trigger Support determines newly triggered rules, and the engine
// considers and executes immediate rules until quiescence.
func (t *Txn) EndLine() error {
	if err := t.check(); err != nil {
		return err
	}
	t.flushBlock()
	return t.processRules(func(d rules.Def) bool { return d.Coupling == rules.Immediate })
}

// flushBlock announces the pending occurrences and runs the triggering
// determination, then retires Event Base segments below the consumption
// low-watermark. The block boundary is the one point where compaction is
// safe: no consideration window is in flight (runRule finishes reading
// its window — condition and action — before flushing the action's
// block), so every occurrence at or below the watermark is unreachable
// by any future read. See DESIGN.md §8.
func (t *Txn) flushBlock() {
	db := t.db
	tr := db.tracer
	db.stats.Blocks++
	db.m.blocks.Inc()
	n := len(t.pending)
	db.m.blockEvents.Observe(int64(n))
	if tr != nil {
		tr.BlockStart(n)
	}
	db.support.NotifyArrivals(t.pending)
	t.pending = t.pending[:0]
	now := db.clock.Now()
	var examinedBefore int64
	if tr != nil {
		tr.SweepStart(now)
		examinedBefore = db.support.Stats().RulesExamined
	}
	fired := db.support.CheckTriggered(now)
	if tr != nil {
		tr.SweepEnd(int(db.support.Stats().RulesExamined-examinedBefore), len(fired))
		for _, name := range fired {
			// The activation instant and the net effect behind it: the
			// occurrences of the rule's relevant window up to activation.
			// Read-only lookups — tracing must never perturb state.
			if st, ok := db.support.Rule(name); ok {
				tr.RuleTriggered(name, st.TriggeredAt,
					t.base.CountArrivals(st.LastConsideration, st.TriggeredAt))
			}
		}
	}
	if !db.opts.DisableCompaction {
		wm := db.support.Watermark()
		db.m.watermarkAge.Set(int64(now - wm))
		segsBefore := 0
		if tr != nil {
			segsBefore = t.base.RetiredSegments()
		}
		if retired := t.base.CompactBelow(wm); retired > 0 && tr != nil {
			tr.Compaction(retired, t.base.RetiredSegments()-segsBefore, wm)
		}
	}
	if tr != nil {
		tr.BlockEnd(n, fired)
	}
}

// processRules considers and executes triggered rules passing the filter,
// highest priority first, re-running the triggering determination after
// every rule action (itself a non-interruptible block), until no rule in
// scope is triggered.
func (t *Txn) processRules(filter func(rules.Def) bool) error {
	for {
		name, ok := t.db.support.Pick(filter)
		if !ok {
			return nil
		}
		if err := t.runRule(name); err != nil {
			return err
		}
	}
}

// runRule performs one consideration (and, if the condition holds, one
// set-oriented execution) of a rule.
func (t *Txn) runRule(name string) error {
	t.execs++
	if t.execs > t.db.opts.MaxRuleExecutions {
		return fmt.Errorf("%w (%d executions; non-terminating rule set?)",
			ErrRuleLimit, t.execs-1)
	}
	consideration, err := t.db.support.Consider(name, t.db.clock.Tick())
	if err != nil {
		return err
	}
	t.db.stats.Considerations++
	t.db.m.considerations.Inc()
	body := t.db.bodies[name]
	ctx := &cond.Ctx{
		Store: t.db.store,
		Base:  t.base,
		Since: consideration.Since,
		At:    consideration.At,
	}
	bindings, err := body.Condition.Eval(ctx)
	if err != nil {
		return fmt.Errorf("engine: rule %q condition: %w", name, err)
	}
	if t.db.tracer != nil {
		t.db.tracer.Considered(name, consideration.Since, consideration.At, len(bindings))
	}
	if len(bindings) == 0 {
		// Condition not satisfied: the rule was considered and is
		// detriggered; nothing executes.
		t.flushBlock()
		return nil
	}
	t.db.stats.RuleExecutions++
	t.db.m.executions.Inc()
	if err := body.Action.Exec(ctx, (*txnMutator)(t), bindings); err != nil {
		return fmt.Errorf("engine: rule %q action: %w", name, err)
	}
	if t.db.tracer != nil {
		t.db.tracer.Executed(name)
	}
	// The action is a non-interruptible block; its occurrences are
	// announced at its end.
	t.flushBlock()
	return nil
}

// txnMutator adapts Txn to act.Mutator.
type txnMutator Txn

func (m *txnMutator) Create(class string, vals map[string]types.Value) (types.OID, error) {
	return (*Txn)(m).Create(class, vals)
}
func (m *txnMutator) Modify(oid types.OID, attr string, v types.Value) error {
	return (*Txn)(m).Modify(oid, attr, v)
}
func (m *txnMutator) Delete(oid types.OID) error { return (*Txn)(m).Delete(oid) }
func (m *txnMutator) Specialize(oid types.OID, sub string) error {
	return (*Txn)(m).Specialize(oid, sub)
}
func (m *txnMutator) Generalize(oid types.OID, super string) error {
	return (*Txn)(m).Generalize(oid, super)
}

// Commit ends the transaction: any open block is closed, immediate rules
// run to quiescence, then the deferred rules suspended until commit are
// processed (their actions may re-trigger immediate rules, which are
// served first by the priority-ordered pick). On error the transaction
// rolls back.
func (t *Txn) Commit() error {
	if err := t.check(); err != nil {
		return err
	}
	if len(t.pending) > 0 {
		if err := t.EndLine(); err != nil {
			t.rollback()
			return err
		}
	}
	if err := t.processRules(func(d rules.Def) bool { return d.Coupling == rules.Immediate }); err != nil {
		t.rollback()
		return err
	}
	if err := t.processRules(nil); err != nil { // immediate + deferred
		t.rollback()
		return err
	}
	t.db.store.DiscardUndo()
	t.done = true
	t.db.txn = nil
	t.db.m.commits.Inc()
	if t.db.tracer != nil {
		t.db.tracer.TransactionEnd(true)
	}
	return nil
}

// Rollback aborts the transaction, undoing every mutation it performed.
func (t *Txn) Rollback() error {
	if err := t.check(); err != nil {
		return err
	}
	t.rollback()
	return nil
}

func (t *Txn) rollback() {
	t.db.store.RollbackTo(t.mark)
	t.done = true
	t.db.txn = nil
	t.db.m.rollbacks.Inc()
	if t.db.tracer != nil {
		t.db.tracer.TransactionEnd(false)
	}
}

// Run executes fn inside a fresh transaction, ending the line after fn
// returns and committing; any error rolls back.
func (db *DB) Run(fn func(*Txn) error) error {
	t, err := db.Begin()
	if err != nil {
		return err
	}
	if err := fn(t); err != nil {
		if !t.done {
			t.rollback()
		}
		return err
	}
	if t.done {
		return nil
	}
	return t.Commit()
}

// RuleBody returns the condition/action pair of a defined rule (the
// zero Body if the rule is unknown). Snapshotting uses it to re-render
// rules to source.
func (db *DB) RuleBody(name string) Body { return db.bodies[name] }
