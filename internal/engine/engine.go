// Package engine implements the Chimera execution machinery of Section 2
// and Section 5: the Block Executor that runs non-interruptible execution
// blocks (user transaction lines and rule actions), the Event Handler
// hand-off that stores fresh occurrences into the Occurred-Events
// structure and wakes the Trigger Support, and the rule-processing loop
// that considers and executes triggered rules by priority with
// immediate/deferred EC coupling and consuming/preserving event
// consumption.
package engine

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"chimera/internal/act"
	"chimera/internal/calculus"
	"chimera/internal/clock"
	"chimera/internal/cond"
	"chimera/internal/event"
	"chimera/internal/metrics"
	"chimera/internal/object"
	"chimera/internal/rules"
	"chimera/internal/schema"
	"chimera/internal/types"
	"chimera/internal/wire"
)

// ErrNoTransaction is returned by transactional operations outside a
// transaction.
var ErrNoTransaction = errors.New("engine: no active transaction")

// ErrTxnOpen is returned by Begin when the database cannot admit another
// transaction line: in single-session mode (Options.MaxSessions ≤ 1)
// when a transaction is already open, in multi-session mode when
// MaxSessions lines are active. Errors are (possibly) wrapped — test
// with errors.Is.
var ErrTxnOpen = errors.New("engine: transaction already open")

// ErrConflict reports that a transaction line lost a latch conflict
// with a concurrent line and was not granted access within the
// configured wait (Options.LockWait). The losing line should be rolled
// back and retried. It aliases object.ErrConflict so either package's
// sentinel matches.
var ErrConflict = object.ErrConflict

// ErrRuleLimit is returned when a rule cascade exceeds the configured
// execution budget — the engine's guard against non-terminating rule
// sets.
var ErrRuleLimit = errors.New("engine: rule execution limit exceeded")

// ErrGasExhausted is returned (wrapped) when a transaction spends more
// evaluation gas than Options.GasLimit allows. The transaction must be
// rolled back; the engine, its shared plan DAG and the WAL stay fully
// consistent and reusable. Aliases calculus.ErrGasExhausted so either
// package's sentinel matches with errors.Is.
var ErrGasExhausted = calculus.ErrGasExhausted

// ErrDeadlineExceeded is returned (wrapped) when a transaction's
// evaluation runs past Options.TimeBudget. Same contract as
// ErrGasExhausted; aliases calculus.ErrDeadlineExceeded.
var ErrDeadlineExceeded = calculus.ErrDeadlineExceeded

// ErrEventLimit is returned (wrapped) when an append would grow a
// transaction's Event Base past Options.MaxEvents/MaxSegments — the
// explicit error that replaces unbounded memory growth. Aliases
// event.ErrLimit.
var ErrEventLimit = event.ErrLimit

// Body is the condition/action pair of a rule (the triggering state is
// owned by the rules package).
type Body struct {
	Condition cond.Formula
	Action    act.Action
}

// Options configures a database.
type Options struct {
	// Support configures the Trigger Support (V(E) filter on by default
	// via DefaultOptions).
	Support rules.Options
	// MaxRuleExecutions bounds rule executions per transaction; 0 means
	// the default of 10000.
	MaxRuleExecutions int
	// GasLimit bounds the evaluation work one transaction may perform,
	// in node-evaluation units (the work TsEvaluations/MemoMisses
	// count), across the triggering determination and condition
	// formulas; 0 = unlimited. A transaction exceeding it fails with a
	// wrapped ErrGasExhausted and must be rolled back; the engine and
	// its shared structures stay consistent (DESIGN.md §14).
	GasLimit int64
	// TimeBudget bounds a transaction's wall-clock evaluation time,
	// measured from Begin; 0 = unlimited. Exceeding it fails with a
	// wrapped ErrDeadlineExceeded under the same degradation contract
	// as GasLimit. The deadline is probed every few dozen node
	// evaluations, so the overshoot past the deadline is microseconds.
	TimeBudget time.Duration
	// MaxEvents bounds the live (retained, uncompacted) occurrences of
	// one transaction's Event Base; 0 = unlimited. An append past the
	// bound fails with a wrapped ErrEventLimit instead of growing
	// without limit — the guard against a transaction outrunning its
	// consumption watermark.
	MaxEvents int
	// MaxSegments bounds the live segments of one transaction's Event
	// Base (MaxSegments × SegmentSize occurrences, in coarser units);
	// 0 = unlimited. Same error and contract as MaxEvents.
	MaxSegments int
	// DisableCompaction keeps every occurrence of a transaction in the
	// Event Base instead of retiring segments below the consumption
	// low-watermark at block boundaries. Compaction is semantically
	// transparent (it only drops occurrences no defined rule's window can
	// reach); disabling it trades bounded memory for a complete log —
	// useful for the differential reference and for ad-hoc inspection of
	// Txn.Base over windows older than every rule's horizon.
	DisableCompaction bool
	// SegmentSize overrides the Event Base segment size (occurrences per
	// generation); 0 uses event.DefaultSegmentSize. Small sizes exercise
	// segment boundaries and compaction in tests; production
	// configurations should leave the default.
	SegmentSize int
	// ColumnarEB selects the columnar Event Base layout: segments store
	// parallel timestamp/type-id/OID-id columns and the triggering hot
	// loops scan them directly (see event.NewBaseSize). Semantically
	// transparent — the differential suites pin it to the row store bit
	// for bit. Mirrors the SharedPlan convention: on by default via
	// DefaultOptions, cleared to opt out (the row-store ablation of
	// experiment B13).
	ColumnarEB bool
	// Metrics, when non-nil, is the registry the engine and every layer
	// under it (Event Base, Trigger Support, incremental sweep) report
	// into; read it back with DB.Snapshot. nil (the default) disables
	// instrumentation entirely: every report site reduces to one
	// branch-predictable nil check with no allocation and no atomic
	// operation, and the differential suite pins enabled vs disabled
	// runs to identical semantics (see DESIGN.md §9).
	Metrics *metrics.Registry
	// MaxSessions is how many transaction lines Begin admits at once.
	// 0 or 1 is the classic single-session engine: one open transaction,
	// no latching, bit-identical to the sequential reference. Above 1
	// each Begin opens an independent line — its own Event Base, its own
	// Trigger Support session, its own undo — and the object store
	// isolates the lines with per-OID/per-class latches (DESIGN.md §11).
	MaxSessions int
	// LockWait bounds how long a line blocks on a latch another line
	// holds before the operation fails with ErrConflict: 0 means the
	// 100ms default, negative is a try-latch (immediate ErrConflict).
	// Since latches are held to end of line, the timeout doubles as the
	// deadlock breaker; an unbounded wait is deliberately not offered.
	LockWait time.Duration
	// Durability, when its Store is set, makes the database durable: a
	// group-committed write-ahead log covers the live window, sealed
	// Event Base segments and the committed object/schema/rule state are
	// persisted by checkpoints, and engine.Recover rebuilds a
	// bit-identical engine after a crash (DESIGN.md §13). Durable
	// databases are constructed with Open, not New, and require the
	// columnar Event Base in single-session mode.
	Durability DurabilityOptions
}

// Validate checks the options for constructor use. Negative limits are
// rejected rather than silently clamped, and durability's structural
// requirements (columnar Event Base, single session) are enforced up
// front — a misconfiguration must fail at Open, not at the first
// checkpoint.
func (o Options) Validate() error {
	if o.SegmentSize < 0 {
		return fmt.Errorf("engine: negative SegmentSize %d", o.SegmentSize)
	}
	if o.MaxSessions < 0 {
		return fmt.Errorf("engine: negative MaxSessions %d", o.MaxSessions)
	}
	if o.MaxRuleExecutions < 0 {
		return fmt.Errorf("engine: negative MaxRuleExecutions %d", o.MaxRuleExecutions)
	}
	if o.GasLimit < 0 {
		return fmt.Errorf("engine: negative GasLimit %d", o.GasLimit)
	}
	if o.TimeBudget < 0 {
		return fmt.Errorf("engine: negative TimeBudget %v", o.TimeBudget)
	}
	if o.MaxEvents < 0 {
		return fmt.Errorf("engine: negative MaxEvents %d", o.MaxEvents)
	}
	if o.MaxSegments < 0 {
		return fmt.Errorf("engine: negative MaxSegments %d", o.MaxSegments)
	}
	if o.Durability.enabled() {
		if !o.ColumnarEB {
			return errors.New("engine: durability requires the columnar Event Base (segment export)")
		}
		if o.MaxSessions > 1 && o.Durability.CheckpointEvery > 0 {
			// A multi-session checkpoint must capture only committed state,
			// but the live store holds other lines' uncommitted latched
			// writes; checkpoints are therefore explicit and idle-only
			// (DB.Checkpoint with no open lines), never automatic.
			return fmt.Errorf("engine: automatic checkpoints (CheckpointEvery %d) require single-session mode, MaxSessions is %d; use explicit DB.Checkpoint at idle",
				o.Durability.CheckpointEvery, o.MaxSessions)
		}
		if o.Durability.SyncInterval < 0 {
			return fmt.Errorf("engine: negative Durability.SyncInterval %v", o.Durability.SyncInterval)
		}
		if o.Durability.CheckpointEvery < 0 {
			return fmt.Errorf("engine: negative Durability.CheckpointEvery %d", o.Durability.CheckpointEvery)
		}
	}
	return nil
}

// DefaultOptions enables the paper's static optimization and the formal
// triggering semantics, plus the incremental ∃t' sweep, the
// GOMAXPROCS-sharded triggering determination, the shared trigger plan
// with memoized evaluation, and the columnar Event Base (all
// semantically transparent; see DESIGN.md §7, §10 and §12).
func DefaultOptions() Options {
	return Options{
		Support: rules.Options{
			UseFilter:   true,
			Incremental: true,
			SharedPlan:  true,
			Workers:     rules.DefaultWorkers(),
		},
		ColumnarEB: true,
	}
}

// Stats aggregates engine-level counters for the benchmark harness.
type Stats struct {
	Transactions   int64
	Blocks         int64
	Events         int64
	RuleExecutions int64
	Considerations int64
	// ReadTxns counts read-only transactions (BeginRead).
	ReadTxns int64
	// Conflicts counts transaction-line operations that failed with
	// ErrConflict (always 0 in single-session mode).
	Conflicts int64
	// Budget-kill counters: transactions that hit a resource limit.
	// GasKills and DeadlineKills count evaluation-budget exhaustions
	// (ErrGasExhausted / ErrDeadlineExceeded), EventLimitHits appends
	// refused by the Event Base bounds (ErrEventLimit), RuleLimitHits
	// rule cascades stopped by MaxRuleExecutions (ErrRuleLimit).
	GasKills       int64
	DeadlineKills  int64
	EventLimitHits int64
	RuleLimitHits  int64
}

// statsCounters is the engine's internal, atomically-updated form of
// Stats: concurrent transaction lines bump them without a lock.
type statsCounters struct {
	transactions   atomic.Int64
	blocks         atomic.Int64
	events         atomic.Int64
	ruleExecutions atomic.Int64
	considerations atomic.Int64
	readTxns       atomic.Int64
	conflicts      atomic.Int64
	gasKills       atomic.Int64
	deadlineKills  atomic.Int64
	eventLimitHits atomic.Int64
	ruleLimitHits  atomic.Int64
}

// DB is a Chimera database: schema, object store, rule set, and the
// machinery to run transactions against them.
type DB struct {
	clock   *clock.Clock
	schema  *schema.Schema
	store   *object.Store
	support *rules.Support
	bodies  map[string]Body
	opts    Options
	stats   statsCounters
	tracer  Tracer

	// mu guards the session state: the single-session txn pointer and
	// the active-line count.
	mu     sync.Mutex
	txn    *Txn
	active int
	// commitMu is the commit pipeline's serialization point: deferred
	// rule processing and the publication of a line's writes (its latch
	// release) happen one line at a time, in commit order, while
	// everything before — trigger determination, condition evaluation,
	// immediate rules — runs fully in parallel across lines.
	commitMu sync.Mutex

	// m, baseMetrics and latchM are the resolved instrument sets (zero
	// values when Options.Metrics is nil); baseMetrics is installed on
	// each transaction's Event Base at Begin, latchM on each line.
	m           engineMetrics
	baseMetrics event.BaseMetrics
	latchM      object.LatchMetrics

	// Durability state (nil wal on the classic in-memory engine): the
	// group committer, the checkpoint sequence number (cross-checked
	// against the WAL's leading marker record), the transaction
	// generation that namespaces persisted segment ids, the high-water
	// mark of persisted segment ordinals within the current generation,
	// the block count since the last checkpoint, and the closed flag.
	wal             *walWriter
	ckptSeq         uint64
	txnGen          uint32
	segsPersisted   uint64
	blocksSinceCkpt int
	closed          bool
}

// Open creates an empty database after validating the options — the
// constructor for durable databases (and the error-returning form of
// New). With durability enabled the store must be empty: a store
// holding a checkpoint or WAL records is an existing database and must
// go through Recover, not be silently reinitialized (ErrNeedsRecovery).
func Open(opts Options) (*DB, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	db := newDB(opts)
	if !opts.Durability.enabled() {
		return db, nil
	}
	ckpt, err := opts.Durability.Store.Checkpoint()
	if err != nil {
		return nil, fmt.Errorf("engine: open: %w", err)
	}
	wal, err := opts.Durability.Store.WAL()
	if err != nil {
		return nil, fmt.Errorf("engine: open: %w", err)
	}
	if ckpt != nil || len(wal) > 0 {
		return nil, ErrNeedsRecovery
	}
	db.attachWAL()
	// The initial checkpoint stamps the store with sequence 1 and seeds
	// the WAL with its marker record, so a crash before the first
	// explicit checkpoint already recovers cleanly.
	if err := db.checkpointNow(nil); err != nil {
		db.wal.close()
		return nil, err
	}
	return db, nil
}

// New creates an empty database with the given options. New does not
// validate (it predates Options.Validate and keeps the legacy clamping
// behavior); durable databases must use Open — New panics if
// Durability.Store is set, because it cannot report the store checks'
// errors.
func New(opts Options) *DB {
	if opts.Durability.enabled() {
		panic("engine: use Open for durable databases")
	}
	return newDB(opts)
}

// newDB builds the in-memory core shared by New, Open and Recover.
func newDB(opts Options) *DB {
	if opts.MaxRuleExecutions == 0 {
		opts.MaxRuleExecutions = 10000
	}
	if opts.Metrics != nil && opts.Support.Metrics == nil {
		opts.Support.Metrics = rules.NewSupportMetrics(opts.Metrics)
	}
	s := schema.New()
	db := &DB{
		clock:       clock.New(),
		schema:      s,
		store:       object.NewStore(s),
		support:     rules.NewSupport(nil, opts.Support),
		bodies:      make(map[string]Body),
		opts:        opts,
		m:           newEngineMetrics(opts.Metrics),
		baseMetrics: event.NewBaseMetrics(opts.Metrics),
		latchM:      object.NewLatchMetrics(opts.Metrics),
	}
	// Publish the empty store as epoch 1 so BeginRead always has a
	// snapshot to pin, even before the first commit.
	db.store.PublishAll()
	db.m.snapshotEpoch.Set(int64(db.store.PublishedEpoch()))
	return db
}

// Schema exposes the class catalog for definition and lookup.
func (db *DB) Schema() *schema.Schema { return db.schema }

// Store exposes the object store (read-only use outside transactions).
func (db *DB) Store() *object.Store { return db.store }

// Clock exposes the logical clock.
func (db *DB) Clock() *clock.Clock { return db.clock }

// Support exposes the Trigger Support (for statistics and inspection).
func (db *DB) Support() *rules.Support { return db.support }

// Stats returns a snapshot of the engine counters.
func (db *DB) Stats() Stats {
	return Stats{
		Transactions:   db.stats.transactions.Load(),
		Blocks:         db.stats.blocks.Load(),
		Events:         db.stats.events.Load(),
		RuleExecutions: db.stats.ruleExecutions.Load(),
		Considerations: db.stats.considerations.Load(),
		ReadTxns:       db.stats.readTxns.Load(),
		Conflicts:      db.stats.conflicts.Load(),
		GasKills:       db.stats.gasKills.Load(),
		DeadlineKills:  db.stats.deadlineKills.Load(),
		EventLimitHits: db.stats.eventLimitHits.Load(),
		RuleLimitHits:  db.stats.ruleLimitHits.Load(),
	}
}

// Limits reports the database's configured resource bounds alongside the
// counters of transactions that hit them — the data behind the shell's
// `show limits`.
type Limits struct {
	GasLimit    int64
	TimeBudget  time.Duration
	MaxEvents   int
	MaxSegments int
	// MaxRuleExecutions is the per-transaction rule-cascade bound.
	MaxRuleExecutions int
	// Kill counters (see Stats).
	GasKills       int64
	DeadlineKills  int64
	EventLimitHits int64
	RuleLimitHits  int64
}

// Limits returns the configured resource bounds and kill counters.
func (db *DB) Limits() Limits {
	return Limits{
		GasLimit:          db.opts.GasLimit,
		TimeBudget:        db.opts.TimeBudget,
		MaxEvents:         db.opts.MaxEvents,
		MaxSegments:       db.opts.MaxSegments,
		MaxRuleExecutions: db.opts.MaxRuleExecutions,
		GasKills:          db.stats.gasKills.Load(),
		DeadlineKills:     db.stats.deadlineKills.Load(),
		EventLimitHits:    db.stats.eventLimitHits.Load(),
		RuleLimitHits:     db.stats.ruleLimitHits.Load(),
	}
}

// ActiveLines returns the number of open transaction lines.
func (db *DB) ActiveLines() int {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.active
}

// multiSession reports whether the database runs concurrent lines.
func (db *DB) multiSession() bool { return db.opts.MaxSessions > 1 }

// lockWait translates Options.LockWait into the line's wait budget
// (line semantics: 0 is a try-latch, positive a bound).
func (db *DB) lockWait() time.Duration {
	switch {
	case db.opts.LockWait < 0:
		return 0
	case db.opts.LockWait == 0:
		return 100 * time.Millisecond
	default:
		return db.opts.LockWait
	}
}

// walDDL logs one DDL record (a no-op on the in-memory engine).
func (db *DB) walDDL(rec []byte) error {
	if db.wal == nil {
		return nil
	}
	_, err := db.wal.append(rec)
	return err
}

// DefineClass registers a root class.
func (db *DB) DefineClass(name string, attrs ...schema.Attribute) error {
	if _, err := db.schema.Define(name, attrs...); err != nil {
		return err
	}
	return db.walDDL(encDefineClass(nil, name, "", attrs))
}

// DefineSubclass registers a class specializing parent.
func (db *DB) DefineSubclass(name, parent string, attrs ...schema.Attribute) error {
	if _, err := db.schema.DefineSub(name, parent, attrs...); err != nil {
		return err
	}
	return db.walDDL(encDefineClass(nil, name, parent, attrs))
}

// DefineRule registers a trigger: its event expression and modes go to
// the Trigger Support, its condition and action are kept for
// consideration time. Rules may be defined at any time outside a
// transaction.
func (db *DB) DefineRule(def rules.Def, body Body) error {
	db.mu.Lock()
	open := db.txn != nil || db.active > 0
	db.mu.Unlock()
	if open {
		return errors.New("engine: cannot define rules inside a transaction")
	}
	for _, t := range eventClasses(def) {
		if _, ok := db.schema.Class(t); !ok {
			return fmt.Errorf("engine: rule %q mentions unknown class %q", def.Name, t)
		}
	}
	if err := db.support.Define(def); err != nil {
		return err
	}
	db.bodies[def.Name] = body
	// Rules are logged as their concrete-syntax source: recovery replays
	// them through lang.ParseRule, the same front door a live definition
	// came through.
	return db.walDDL(encDefineRule(nil, RenderRule(def, body)))
}

func eventClasses(def rules.Def) []string {
	seen := make(map[string]bool)
	var out []string
	if def.Event == nil {
		return nil
	}
	for _, t := range defPrimitives(def) {
		if t.Op == event.OpExternal {
			continue // signal names are free-form, not schema classes
		}
		if !seen[t.Class] {
			seen[t.Class] = true
			out = append(out, t.Class)
		}
	}
	return out
}

func defPrimitives(def rules.Def) []event.Type {
	if def.Event == nil {
		return nil
	}
	return calculusPrimitives(def)
}

// DropRule removes a rule.
func (db *DB) DropRule(name string) error {
	db.mu.Lock()
	open := db.txn != nil || db.active > 0
	db.mu.Unlock()
	if open {
		return errors.New("engine: cannot drop rules inside a transaction")
	}
	if err := db.support.Drop(name); err != nil {
		return err
	}
	delete(db.bodies, name)
	return db.walDDL(encDropRule(nil, name))
}

// Txn is an open transaction line: a sequence of non-interruptible
// blocks followed by Commit or Rollback. In single-session mode it is
// the database's one open transaction; in multi-session mode up to
// Options.MaxSessions lines run concurrently, each on its own
// goroutine. A Txn itself is not safe for concurrent use.
type Txn struct {
	db   *DB
	base *event.Base
	// view is the line's Trigger Support state: the shared Support
	// itself in single-session mode (the classic Rebind dance), a
	// private rules.Session in multi-session mode.
	view rules.View
	// line is the object-store session: solo (no latching, OID-reusing
	// undo) in single-session mode, latched in multi-session mode.
	line    *object.Line
	multi   bool
	pending []event.Occurrence
	execs   int
	done    bool
	// budget is the transaction's evaluation budget (nil = unlimited),
	// shared by the triggering determination and condition evaluation.
	// When it trips, the fault surfaces as a typed error from the
	// operation that crossed the limit and the transaction must be
	// rolled back.
	budget *calculus.Budget
	// Durable-mode block state: the current block's WAL op stream
	// (events, mutations, considerations in execution order — becomes
	// one record at the block boundary), a reused record-assembly
	// buffer, and the per-log set of event type ids already declared
	// (indexed by interned id).
	wrec     []byte
	recBuf   []byte
	markBuf  []firedMark
	walTypes []bool
	// Multi-session durable-mode run staging: the transaction's framed
	// begin and block records, withheld from the group committer until
	// commit. The WAL must stay a serial stream of whole per-transaction
	// runs in commit order (replay is commit-ordered), so racing sessions
	// cannot append block records directly; each stages its run privately
	// and hands it over in one appendRun under the commit latch. A
	// rollback simply discards the staged run — the log never learns the
	// transaction existed.
	runBuf  []byte
	runRecs int
}

// stageRec frames one record into the transaction's private run buffer
// (multi-session durable mode). The frame copies rec, so the reused
// record-assembly buffers are safe to pass.
func (t *Txn) stageRec(rec []byte) {
	t.runBuf = wire.AppendFrame(t.runBuf, rec)
	t.runRecs++
}

// Begin opens a transaction line. The Event Base starts empty (it is
// the log of occurrences "since the beginning of the transaction") and
// every rule's horizon resets to the transaction start. With
// Options.MaxSessions ≤ 1 at most one transaction is open at a time;
// above that, up to MaxSessions lines run concurrently. Either limit
// reports ErrTxnOpen.
func (db *DB) Begin() (*Txn, error) {
	var base *event.Base
	if db.opts.ColumnarEB {
		base = event.NewBaseSize(db.opts.SegmentSize)
	} else {
		base = event.NewRowBase(db.opts.SegmentSize)
	}
	base.SetMetrics(db.baseMetrics)
	base.SetLimits(db.opts.MaxEvents, db.opts.MaxSegments)
	t := &Txn{db: db, base: base, multi: db.multiSession()}
	if db.opts.GasLimit > 0 || db.opts.TimeBudget > 0 {
		var deadline time.Time
		if db.opts.TimeBudget > 0 {
			deadline = time.Now().Add(db.opts.TimeBudget)
		}
		t.budget = calculus.NewBudget(db.opts.GasLimit, deadline)
	}

	db.mu.Lock()
	if db.closed {
		db.mu.Unlock()
		return nil, ErrClosed
	}
	if t.multi {
		if db.active >= db.opts.MaxSessions {
			db.mu.Unlock()
			return nil, fmt.Errorf("%w: %d transaction lines active (MaxSessions %d)",
				ErrTxnOpen, db.active, db.opts.MaxSessions)
		}
		t.view = db.support.NewSession(base, db.clock.Now())
		t.line = db.store.BeginLine(object.LineOptions{
			Wait:    db.lockWait(),
			Metrics: db.latchM,
		})
	} else {
		if db.txn != nil {
			db.mu.Unlock()
			return nil, ErrTxnOpen
		}
		db.support.Rebind(base)
		db.support.BeginTransaction(db.clock.Now())
		t.view = db.support
		t.line = db.store.BeginLine(object.LineOptions{Solo: true})
		db.txn = t
	}
	db.active++
	db.m.activeLines.Set(int64(db.active))
	if db.opts.Durability.enabled() {
		// The generation namespaces this transaction's persisted segment
		// ids; segment ordinals restart at zero with the fresh base. The
		// bump happens during WAL replay too (wal is nil then), keeping
		// replay's generation arithmetic identical to the live run's. It
		// lives under db.mu because concurrent multi-session Begins race
		// on it (the generation is unused there — multi-session
		// checkpoints are idle-only — but the counter must stay sane).
		db.txnGen++
		db.segsPersisted = 0
	}
	db.mu.Unlock()

	// Install the line's budget unconditionally: the single-session view
	// is the shared Support, so a nil install clears any budget left by a
	// previous transaction.
	t.view.SetBudget(t.budget)

	db.stats.transactions.Add(1)
	db.m.transactions.Inc()
	if db.tracer != nil {
		db.tracer.TransactionStart(db.clock.Now())
	}
	if db.wal != nil {
		if t.multi {
			t.stageRec(encBegin(nil, db.clock.Now()))
		} else if _, err := db.wal.append(encBegin(nil, db.clock.Now())); err != nil {
			t.rollback()
			return nil, err
		}
	}
	return t, nil
}

// log stamps and stores one occurrence (Event Handler duty). In durable
// mode it also encodes the occurrence into the block's WAL op stream —
// an in-memory append into a reused buffer, so the hot path stays
// allocation-free and never touches the store (the group committer
// drains record batches in the background).
func (t *Txn) log(ty event.Type, oid types.OID) error {
	ts := t.db.clock.Tick()
	if t.db.wal != nil {
		occ, tid, err := t.base.AppendTID(ty, oid, ts)
		if err != nil {
			return t.classify(err)
		}
		t.walEvent(tid, ty, ts, oid)
		t.pending = append(t.pending, occ)
	} else {
		occ, err := t.base.Append(ty, oid, ts)
		if err != nil {
			return t.classify(err)
		}
		t.pending = append(t.pending, occ)
	}
	t.db.stats.events.Add(1)
	t.db.m.events.Inc()
	return nil
}

// walEvent appends one occurrence to the block op stream, declaring its
// interned type id on first use in this log.
func (t *Txn) walEvent(tid int32, ty event.Type, ts clock.Time, oid types.OID) {
	if int(tid) >= len(t.walTypes) {
		t.walTypes = append(t.walTypes, make([]bool, int(tid)+1-len(t.walTypes))...)
	}
	if !t.walTypes[tid] {
		t.walTypes[tid] = true
		t.wrec = encOpTypeDef(t.wrec, tid, ty)
	}
	t.wrec = encOpEvent(t.wrec, ts, tid, oid)
}

func (t *Txn) check() error {
	if t == nil || t.done {
		return ErrNoTransaction
	}
	if !t.multi && t.db.txn != t {
		return ErrNoTransaction
	}
	return nil
}

// conflict funnels every ErrConflict an operation reports, counting it.
func (t *Txn) conflict(err error) error {
	if errors.Is(err, object.ErrConflict) {
		t.db.stats.conflicts.Add(1)
	}
	return err
}

// classify funnels resource-limit errors into their kill counters; every
// budget or capacity error a transaction surfaces passes through here
// exactly once. Non-limit errors pass through untouched.
func (t *Txn) classify(err error) error {
	switch {
	case err == nil:
	case errors.Is(err, calculus.ErrGasExhausted):
		t.db.stats.gasKills.Add(1)
		t.db.m.gasKills.Inc()
	case errors.Is(err, calculus.ErrDeadlineExceeded):
		t.db.stats.deadlineKills.Add(1)
		t.db.m.deadlineKills.Inc()
	case errors.Is(err, event.ErrLimit):
		t.db.stats.eventLimitHits.Add(1)
		t.db.m.eventLimitHits.Inc()
	case errors.Is(err, ErrRuleLimit):
		t.db.stats.ruleLimitHits.Add(1)
		t.db.m.ruleLimitHits.Inc()
	}
	return err
}

// Create instantiates an object and logs create(class).
func (t *Txn) Create(class string, vals map[string]types.Value) (types.OID, error) {
	if err := t.check(); err != nil {
		return types.NilOID, err
	}
	oid, err := t.line.Create(class, vals)
	if err != nil {
		return types.NilOID, t.conflict(err)
	}
	if t.db.wal != nil {
		// The allocated OID is logged so replay can verify the
		// deterministic allocator reproduced it.
		if t.wrec, err = encOpCreate(t.wrec, oid, class, vals); err != nil {
			return types.NilOID, err
		}
	}
	return oid, t.log(event.Create(class), oid)
}

// Modify updates one attribute and logs modify(class.attr).
func (t *Txn) Modify(oid types.OID, attr string, v types.Value) error {
	if err := t.check(); err != nil {
		return err
	}
	o, err := t.line.Fetch(oid)
	if err != nil {
		return t.conflict(err)
	}
	if err := t.line.Modify(oid, attr, v); err != nil {
		return t.conflict(err)
	}
	if t.db.wal != nil {
		var err error
		if t.wrec, err = encOpModify(t.wrec, oid, attr, v); err != nil {
			return err
		}
	}
	return t.log(event.Modify(o.Class().Name(), attr), oid)
}

// Delete removes an object and logs delete(class).
func (t *Txn) Delete(oid types.OID) error {
	if err := t.check(); err != nil {
		return err
	}
	o, err := t.line.Fetch(oid)
	if err != nil {
		return t.conflict(err)
	}
	class := o.Class().Name()
	if err := t.line.Delete(oid); err != nil {
		return t.conflict(err)
	}
	if t.db.wal != nil {
		t.wrec = encOpDelete(t.wrec, oid)
	}
	return t.log(event.Delete(class), oid)
}

// Specialize moves an object into a subclass and logs specialize(sub).
func (t *Txn) Specialize(oid types.OID, sub string) error {
	if err := t.check(); err != nil {
		return err
	}
	if err := t.line.Specialize(oid, sub); err != nil {
		return t.conflict(err)
	}
	if t.db.wal != nil {
		t.wrec = encOpMigrate(t.wrec, opSpecialize, oid, sub)
	}
	return t.log(event.T(event.OpSpecialize, sub), oid)
}

// Generalize moves an object into a superclass and logs
// generalize(super).
func (t *Txn) Generalize(oid types.OID, super string) error {
	if err := t.check(); err != nil {
		return err
	}
	if err := t.line.Generalize(oid, super); err != nil {
		return t.conflict(err)
	}
	if t.db.wal != nil {
		t.wrec = encOpMigrate(t.wrec, opGeneralize, oid, super)
	}
	return t.log(event.T(event.OpGeneralize, super), oid)
}

// Raise signals an external event (an extension beyond the paper,
// mirroring HiPAC's external events): it logs an external(signal)
// occurrence affecting no object. Rules listen with the same calculus —
// "events external(backup) + -modify(stock.quantity)".
func (t *Txn) Raise(signal string) error {
	if err := t.check(); err != nil {
		return err
	}
	if signal == "" {
		return errors.New("engine: empty signal name")
	}
	return t.log(event.External(signal), types.NilOID)
}

// Emit logs one occurrence of an arbitrary event type against oid
// (types.NilOID for events affecting no object) without touching the
// object store. It is the streaming ingest primitive: a stream session
// coalesces externally observed events — sensor readings, card swipes,
// telemetry — into micro-batches of Emits followed by one EndLine, so
// one trigger sweep and one WAL record serve the whole batch. Raise is
// Emit specialized to external signals.
func (t *Txn) Emit(ty event.Type, oid types.OID) error {
	if err := t.check(); err != nil {
		return err
	}
	return t.log(ty, oid)
}

// SetRetention declares a logical-time retention window on the
// transaction's Event Base (see event.Base.SetRetention): block-boundary
// compaction then retires occurrences older than window ticks behind the
// clock even when a dormant rule's watermark would pin them. Streaming
// sessions use it to keep steady-state memory flat on unbounded inputs;
// the cost is semantic and explicit — operators cannot see past the
// retention bound.
func (t *Txn) SetRetention(window clock.Time) error {
	if err := t.check(); err != nil {
		return err
	}
	t.base.SetRetention(window)
	return nil
}

// SetBudget replaces the transaction's evaluation budget (nil = run
// unlimited). The engine installs the per-transaction budget from
// Options at Begin; a streaming session reinstalls a fresh budget per
// micro-batch so one poisoned batch trips ErrGasExhausted for that
// batch's sweep without condemning the whole long-lived session.
func (t *Txn) SetBudget(b *calculus.Budget) error {
	if err := t.check(); err != nil {
		return err
	}
	t.budget = b
	t.view.SetBudget(b)
	return nil
}

// ResetRuleGuard restarts the transaction's rule-cascade execution
// counter (Options.MaxRuleExecutions). Ordinary transactions never
// call this — the guard bounds the whole transaction. A streaming
// session calls it at micro-batch boundaries so the bound guards each
// batch's cascade instead of accumulating across a session that sweeps
// indefinitely many batches on one transaction line.
func (t *Txn) ResetRuleGuard() error {
	if err := t.check(); err != nil {
		return err
	}
	t.execs = 0
	return nil
}

// Select queries the live extension of a class and logs select(class)
// occurrences for the returned objects.
func (t *Txn) Select(class string) ([]types.OID, error) {
	if err := t.check(); err != nil {
		return nil, err
	}
	oids, err := t.line.Select(class)
	if err != nil {
		return nil, t.conflict(err)
	}
	for _, oid := range oids {
		if err := t.log(event.T(event.OpSelect, class), oid); err != nil {
			return nil, err
		}
	}
	return oids, nil
}

// Get reads an object without generating events. In multi-session mode
// the read takes a shared latch on the OID, held to end of line.
func (t *Txn) Get(oid types.OID) (*object.Object, bool) {
	if err := t.check(); err != nil {
		return nil, false
	}
	return t.line.Get(oid)
}

// Base exposes the transaction's Event Base (read-only use). Unless
// Options.DisableCompaction is set, windows reaching below every rule's
// horizon (the consumption low-watermark) may observe only the live
// remainder of the log — compaction retires segments no rule can see.
func (t *Txn) Base() *event.Base { return t.base }

// EndLine closes the current non-interruptible block (a user transaction
// line): the Event Handler announces the block's occurrences, the
// Trigger Support determines newly triggered rules, and the engine
// considers and executes immediate rules until quiescence.
func (t *Txn) EndLine() error {
	if err := t.check(); err != nil {
		return err
	}
	if err := t.flushBlock(); err != nil {
		return err
	}
	return t.processRules(func(d rules.Def) bool { return d.Coupling == rules.Immediate })
}

// flushBlock announces the pending occurrences and runs the triggering
// determination, then retires Event Base segments below the consumption
// low-watermark. The block boundary is the one point where compaction is
// safe: no consideration window is in flight (runRule finishes reading
// its window — condition and action — before flushing the action's
// block), so every occurrence at or below the watermark is unreachable
// by any future read. See DESIGN.md §8.
//
// A transaction budget tripping mid-determination surfaces here as the
// typed error (ErrGasExhausted / ErrDeadlineExceeded). The error returns
// before compaction and before the block record reaches the WAL: the
// killed block's ops stay unlogged, so a subsequent rollback leaves the
// log exactly as if the block never ran.
func (t *Txn) flushBlock() error {
	db := t.db
	tr := db.tracer
	db.stats.blocks.Add(1)
	db.m.blocks.Inc()
	n := len(t.pending)
	db.m.blockEvents.Observe(int64(n))
	if tr != nil {
		tr.BlockStart(n)
	}
	t.view.NotifyArrivals(t.pending)
	t.pending = t.pending[:0]
	now := db.clock.Now()
	var examinedBefore int64
	if tr != nil {
		tr.SweepStart(now)
		examinedBefore = t.view.Stats().RulesExamined
	}
	var fired []string
	if err := calculus.CatchBudget(func() { fired = t.view.CheckTriggered(now) }); err != nil {
		return t.classify(fmt.Errorf("engine: triggering determination: %w", err))
	}
	if tr != nil {
		tr.SweepEnd(int(t.view.Stats().RulesExamined-examinedBefore), len(fired))
		for _, name := range fired {
			// The activation instant and the net effect behind it: the
			// occurrences of the rule's relevant window up to activation.
			// Read-only lookups — tracing must never perturb state.
			if st, ok := t.view.Rule(name); ok {
				tr.RuleTriggered(name, st.TriggeredAt,
					t.base.CountArrivals(st.LastConsideration, st.TriggeredAt))
			}
		}
	}
	if !db.opts.DisableCompaction {
		// The retention bound lifts the watermark for streaming sessions
		// (Txn.SetRetention); with no retention it is the watermark.
		wm := t.base.RetentionBound(t.view.Watermark(), now)
		db.m.watermarkAge.Set(int64(now - wm))
		segsBefore := 0
		if tr != nil {
			segsBefore = t.base.RetiredSegments()
		}
		if retired := t.base.CompactBelow(wm); retired > 0 && tr != nil {
			tr.Compaction(retired, t.base.RetiredSegments()-segsBefore, wm)
		}
	}
	if tr != nil {
		tr.BlockEnd(n, fired)
	}
	if db.wal != nil {
		t.walFlushBlock(now, fired)
	}
	return nil
}

// walFlushBlock turns the accumulated op stream into one block record
// and hands it to the group committer. Empty blocks (no ops, nothing
// fired) are skipped — they are semantically inert, and skipping them
// keeps idle EndLine calls off the log. Append errors are sticky in the
// writer and surface at Commit; a failed log must not corrupt the
// in-memory run.
func (t *Txn) walFlushBlock(now clock.Time, fired []string) {
	db := t.db
	if len(t.wrec) == 0 && len(fired) == 0 {
		return
	}
	var marks []firedMark
	if len(fired) > 0 {
		marks = t.markBuf[:0]
		for _, name := range fired {
			// The activation instant is recorded and restored verbatim:
			// recovery must not re-run the triggering determination (a
			// monotone rule's TriggeredAt is latched at first activation
			// and cannot be recomputed from a later probe).
			st, ok := t.view.Rule(name)
			if !ok {
				continue
			}
			marks = append(marks, firedMark{Rule: name, At: st.TriggeredAt})
		}
		t.markBuf = marks[:0]
	}
	rec := encBlock(t.recBuf[:0], now, marks, t.wrec)
	t.recBuf = rec
	t.wrec = t.wrec[:0]
	if t.multi {
		// Concurrent lines stage their block records privately; the whole
		// run reaches the committer at commit. Automatic checkpoints are
		// disabled in multi-session mode (Options.Validate), so no
		// block-count bookkeeping happens here either.
		t.stageRec(rec)
		return
	}
	if _, err := db.wal.append(rec); err != nil {
		return // sticky; Commit reports it
	}
	db.blocksSinceCkpt++
	if every := db.dur().CheckpointEvery; every > 0 && db.blocksSinceCkpt >= every {
		db.checkpointNow(t) //nolint:errcheck // sticky in the writer; Commit reports it
	}
}

// dur returns the durability options.
func (db *DB) dur() DurabilityOptions { return db.opts.Durability }

// processRules considers and executes triggered rules passing the filter,
// highest priority first, re-running the triggering determination after
// every rule action (itself a non-interruptible block), until no rule in
// scope is triggered.
func (t *Txn) processRules(filter func(rules.Def) bool) error {
	for {
		name, ok := t.view.Pick(filter)
		if !ok {
			return nil
		}
		if err := t.runRule(name); err != nil {
			return err
		}
	}
}

// runRule performs one consideration (and, if the condition holds, one
// set-oriented execution) of a rule.
func (t *Txn) runRule(name string) error {
	t.execs++
	if t.execs > t.db.opts.MaxRuleExecutions {
		return t.classify(fmt.Errorf("%w (%d executions; non-terminating rule set?)",
			ErrRuleLimit, t.execs-1))
	}
	at := t.db.clock.Tick()
	consideration, err := t.view.Consider(name, at)
	if err != nil {
		return err
	}
	if t.db.wal != nil {
		// The consideration joins the block op stream: it precedes the
		// action's ops in execution order, so replay advances the rule's
		// horizon at exactly the live instant.
		t.wrec = encOpConsider(t.wrec, name, at)
	}
	t.db.stats.considerations.Add(1)
	t.db.m.considerations.Inc()
	body := t.db.bodies[name]
	// The condition reads through the line, so in multi-session mode
	// every object and class extension it examines is latched shared to
	// end of line and the bindings stay stable.
	ctx := &cond.Ctx{
		Store:  t.line,
		Base:   t.base,
		Since:  consideration.Since,
		At:     consideration.At,
		Budget: t.budget,
	}
	bindings, err := evalCondition(body, ctx)
	if err != nil {
		return t.classify(t.conflict(fmt.Errorf("engine: rule %q condition: %w", name, err)))
	}
	if t.db.tracer != nil {
		t.db.tracer.Considered(name, consideration.Since, consideration.At, len(bindings))
	}
	if len(bindings) == 0 {
		// Condition not satisfied: the rule was considered and is
		// detriggered; nothing executes.
		return t.flushBlock()
	}
	t.db.stats.ruleExecutions.Add(1)
	t.db.m.executions.Inc()
	if err := body.Action.Exec(ctx, (*txnMutator)(t), bindings); err != nil {
		return fmt.Errorf("engine: rule %q action: %w", name, err)
	}
	if t.db.tracer != nil {
		t.db.tracer.Executed(name)
	}
	// The action is a non-interruptible block; its occurrences are
	// announced at its end.
	return t.flushBlock()
}

// evalCondition runs one rule condition with a budget-fault boundary: a
// budget tripping inside the condition's calculus evaluations unwinds to
// here and converts into the typed error.
func evalCondition(body Body, ctx *cond.Ctx) (bindings []cond.Binding, err error) {
	defer calculus.RecoverBudget(&err)
	return body.Condition.Eval(ctx)
}

// txnMutator adapts Txn to act.Mutator.
type txnMutator Txn

func (m *txnMutator) Create(class string, vals map[string]types.Value) (types.OID, error) {
	return (*Txn)(m).Create(class, vals)
}
func (m *txnMutator) Modify(oid types.OID, attr string, v types.Value) error {
	return (*Txn)(m).Modify(oid, attr, v)
}
func (m *txnMutator) Delete(oid types.OID) error { return (*Txn)(m).Delete(oid) }
func (m *txnMutator) Specialize(oid types.OID, sub string) error {
	return (*Txn)(m).Specialize(oid, sub)
}
func (m *txnMutator) Generalize(oid types.OID, super string) error {
	return (*Txn)(m).Generalize(oid, super)
}

// Commit ends the transaction: any open block is closed, immediate rules
// run to quiescence, then the deferred rules suspended until commit are
// processed (their actions may re-trigger immediate rules, which are
// served first by the priority-ordered pick). On error the transaction
// rolls back.
//
// In multi-session mode Commit is the pipeline's serialization point:
// the deferred-rule phase and the publication of the line's writes (its
// latch release) happen under the database's commit latch, one line at
// a time in commit order, while everything before overlaps freely with
// other lines.
func (t *Txn) Commit() error {
	if err := t.check(); err != nil {
		return err
	}
	if len(t.pending) > 0 {
		if err := t.EndLine(); err != nil {
			t.rollback()
			return err
		}
	}
	if err := t.processRules(func(d rules.Def) bool { return d.Coupling == rules.Immediate }); err != nil {
		t.rollback()
		return err
	}
	db := t.db
	db.lockCommit()
	if db.support.HasDeferred() {
		// The deferred-rule phase is the only rule work left: immediate
		// rules quiesced above and no new occurrence has arrived since,
		// so with zero deferred rules defined (stable while the line is
		// open — definitions are rejected mid-transaction) the phase is
		// skipped and the critical section shrinks to publication.
		if err := t.processRules(nil); err != nil { // immediate + deferred
			db.commitMu.Unlock()
			t.rollback()
			return err
		}
	}
	if db.wal != nil {
		// A committer in the failed state cannot make this commit durable;
		// refuse (and roll back) rather than silently diverge from the log.
		if err := db.wal.Err(); err != nil {
			db.commitMu.Unlock()
			t.rollback()
			return err
		}
	}
	// Stage the write set for snapshot publication before the line's
	// latches release: the exclusive latches pin the touched objects'
	// committed values, so the staging copies exactly what this commit
	// decided. Staging is O(write set); the shard rebuild is deferred to
	// the next BeginRead. The write set is captured first — line.Commit
	// discards the undo log it derives from.
	touched := t.line.TouchedOIDs()
	if len(touched) > 0 {
		db.store.StageTouched(touched)
		db.m.snapshotEpoch.Set(int64(db.store.PublishedEpoch()))
		db.m.publishedObjects.Add(int64(len(touched)))
	}
	t.line.Commit()
	// The commit record joins the log under the commit latch, so the
	// WAL's commit order always matches publication order — two racing
	// sessions can never log commits in the opposite order of their
	// epochs. Only the durability wait happens outside the latch.
	var commitLSN uint64
	var walErr error
	if db.wal != nil {
		if t.multi {
			t.stageRec([]byte{recCommit})
			commitLSN, walErr = db.wal.appendRun(t.runBuf, t.runRecs)
		} else {
			commitLSN, walErr = db.wal.append([]byte{recCommit})
		}
	}
	db.commitMu.Unlock()
	if !t.multi {
		// The legacy contract: a successful commit discards the global
		// undo history, including entries from direct store use outside
		// any transaction.
		db.store.DiscardUndo()
	}
	t.finish()
	db.m.commits.Inc()
	if t.db.tracer != nil {
		t.db.tracer.TransactionEnd(true)
	}
	if db.wal != nil {
		err := walErr
		if err == nil && db.dur().Fsync == FsyncPerCommit {
			// Commits arriving while the committer syncs another's records
			// coalesce: one fsync covers every run enqueued before it, so N
			// concurrent sessions share a durability round (group commit).
			err = db.wal.waitDurable(commitLSN)
		}
		if err != nil {
			// The in-memory state committed; durability did not. Report it —
			// callers treating the database as durable must not proceed.
			return err
		}
	}
	return nil
}

// lockCommit acquires the commit latch, observing the wait on the
// chimera_engine_commit_wait_ns histogram exactly once per acquisition.
// Every path through Commit — publication, a failed deferred-rule
// phase's rollback, a failed WAL check — goes through this single
// acquisition, so a failed commit can never double-count its wait.
func (db *DB) lockCommit() {
	if db.m.commitWait == nil {
		db.commitMu.Lock()
		return
	}
	wait0 := time.Now()
	db.commitMu.Lock()
	db.m.commitWait.Observe(time.Since(wait0).Nanoseconds())
}

// Rollback aborts the transaction, undoing every mutation it performed.
func (t *Txn) Rollback() error {
	if err := t.check(); err != nil {
		return err
	}
	t.rollback()
	return nil
}

func (t *Txn) rollback() {
	touched := t.line.TouchedOIDs()
	t.line.Rollback()
	if !t.multi && len(touched) > 0 {
		// A solo line mutates the shared store in place, and recovery can
		// publish mid-transaction state (Recover returns an interrupted
		// transaction live after a full-store publication): restage the
		// restored committed values so the snapshot never retains writes
		// the rollback undid. In ordinary operation this restages
		// identical values — uncommitted writes never reach a snapshot.
		// Multi-session lines skip it: their writes were latched private
		// and never staged, and staging is reserved to commits holding
		// the commit latch.
		t.db.store.StageTouched(touched)
		t.db.m.snapshotEpoch.Set(int64(t.db.store.PublishedEpoch()))
	}
	t.finish()
	t.db.m.rollbacks.Inc()
	if t.db.tracer != nil {
		t.db.tracer.TransactionEnd(false)
	}
	if t.db.wal != nil {
		// Discard the unflushed block ops (they never happened, as far as
		// the log is concerned) and record the rollback.
		t.wrec = t.wrec[:0]
		if t.multi {
			// The staged run never reached the committer: discarding it is
			// the whole rollback, and the log never learns the transaction
			// existed (replay only ever sees committed runs).
			t.runBuf = t.runBuf[:0]
			t.runRecs = 0
		} else {
			t.db.wal.append([]byte{recRollback}) //nolint:errcheck // sticky in the writer
		}
	}
}

// finish retires the line: its Trigger Support session is released and
// the database's session bookkeeping updated.
func (t *Txn) finish() {
	// Clear the budget before the view outlives the transaction: the
	// single-session view is the shared Support, and a stale budget must
	// not charge (or kill) work done between transactions.
	t.view.SetBudget(nil)
	if sess, ok := t.view.(*rules.Session); ok {
		sess.Release()
	}
	t.done = true
	t.db.mu.Lock()
	if t.db.txn == t {
		t.db.txn = nil
	}
	t.db.active--
	t.db.m.activeLines.Set(int64(t.db.active))
	t.db.mu.Unlock()
}

// Run executes fn inside a fresh transaction, ending the line after fn
// returns and committing; any error — or a panic inside fn — rolls
// back before Run returns (the panic then propagates).
func (db *DB) Run(fn func(*Txn) error) error {
	t, err := db.Begin()
	if err != nil {
		return err
	}
	defer func() {
		if !t.done {
			t.rollback()
		}
	}()
	if err := fn(t); err != nil {
		return err
	}
	if t.done {
		return nil
	}
	return t.Commit()
}

// RuleBody returns the condition/action pair of a defined rule (the
// zero Body if the rule is unknown). Snapshotting uses it to re-render
// rules to source.
func (db *DB) RuleBody(name string) Body { return db.bodies[name] }
