package engine_test

// FuzzEngineBlock feeds random command scripts through a fully
// instrumented engine (metrics registry, span tracer, tiny Event Base
// segments so compaction fires constantly, sharded triggering) and
// asserts the structural invariants that must hold on EVERY input, valid
// or garbage: no panic, strictly balanced BlockStart/BlockEnd and
// TransactionStart/TransactionEnd spans, and a metrics snapshot whose
// counters are coherent. It lives in an external test package so it can
// drive the engine through the public chimera + shell surface, exactly
// as a user would.

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"chimera"
	"chimera/internal/rules"
	"chimera/internal/shell"
)

// fuzzBalanceTracer counts span brackets. The engine processes blocks on
// the transaction's goroutine (the sharded check joins its workers
// before returning), so plain ints suffice.
type fuzzBalanceTracer struct {
	chimera.NopTracer
	blockStarts, blockEnds int
	txnStarts, txnEnds     int
}

func (tr *fuzzBalanceTracer) BlockStart(events int)               { tr.blockStarts++ }
func (tr *fuzzBalanceTracer) BlockEnd(events int, fired []string) { tr.blockEnds++ }
func (tr *fuzzBalanceTracer) TransactionStart(start chimera.Time) { tr.txnStarts++ }
func (tr *fuzzBalanceTracer) TransactionEnd(committed bool)       { tr.txnEnds++ }

func FuzzEngineBlock(f *testing.F) {
	// Seed with every language-conformance script plus hand-written
	// scripts that reach transactions, composite rules and cascades.
	specs, _ := filepath.Glob(filepath.Join("..", "spec", "testdata", "*.spec"))
	for _, p := range specs {
		if b, err := os.ReadFile(p); err == nil {
			f.Add(string(b))
		}
	}
	f.Add(`define class item(n: integer, cap: integer)
define immediate clamp for item
events create, modify(n)
condition item(S), occurred(create , modify(n), S), S.n > S.cap
action modify(item.n, S, S.cap)
end
begin
create item(n = 9, cap = 5)
end line
create item(n = 1, cap = 5)
modify item(1).n = 77
end line
commit
show stats
`)
	f.Add("begin\nraise tick\nend line\nrollback\n")
	f.Add("define class a(x: integer)\nbegin\ncreate a(x = 1)\ndelete a(1)\nend line\ncommit\n")

	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 1<<16 {
			t.Skip("oversized input")
		}
		reg := chimera.NewMetricsRegistry()
		db := chimera.OpenWith(chimera.Options{
			Support:           rules.Options{UseFilter: true, Incremental: true, Workers: 4},
			MaxRuleExecutions: 200,
			SegmentSize:       8,
			Metrics:           reg,
		})
		tr := &fuzzBalanceTracer{}
		db.SetTracer(tr)
		sh := shell.New(db, io.Discard)

		var block strings.Builder
		for _, line := range strings.Split(src, "\n") {
			// save/load touch the filesystem (and load swaps the
			// database out from under the tracer); keep the fuzz
			// hermetic by dropping them.
			if fields := strings.Fields(line); len(fields) > 0 &&
				(fields[0] == "save" || fields[0] == "load") {
				continue
			}
			block.WriteString(line)
			block.WriteByte('\n')
			if shell.NeedsMore(block.String()) {
				continue
			}
			cmd := strings.TrimSpace(block.String())
			block.Reset()
			if cmd == "" {
				continue
			}
			// Errors are expected on garbage input; panics are not.
			_ = sh.Execute(cmd)
		}
		sh.Close()

		if tr.blockStarts != tr.blockEnds {
			t.Fatalf("unbalanced block spans: %d starts, %d ends", tr.blockStarts, tr.blockEnds)
		}
		if tr.txnStarts != tr.txnEnds {
			t.Fatalf("unbalanced transaction spans: %d starts, %d ends", tr.txnStarts, tr.txnEnds)
		}
		snap := reg.Snapshot()
		for name, v := range snap.Counters {
			if v < 0 {
				t.Fatalf("counter %s went negative: %d", name, v)
			}
		}
		if got, want := snap.Counters["chimera_engine_commits_total"]+
			snap.Counters["chimera_engine_rollbacks_total"],
			snap.Counters["chimera_engine_transactions_total"]; got != want {
			t.Fatalf("commits+rollbacks = %d, transactions = %d", got, want)
		}
		if int64(tr.blockEnds) != snap.Counters["chimera_engine_blocks_total"] {
			t.Fatalf("%d block spans, metrics counted %d blocks",
				tr.blockEnds, snap.Counters["chimera_engine_blocks_total"])
		}
		for name, h := range snap.Histograms {
			var bucketSum int64
			for _, c := range h.Counts {
				bucketSum += c
			}
			if bucketSum != h.Count {
				t.Fatalf("histogram %s: bucket sum %d != count %d", name, bucketSum, h.Count)
			}
		}
	})
}
