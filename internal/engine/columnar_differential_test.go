package engine

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"chimera/internal/act"
	"chimera/internal/calculus"
	"chimera/internal/cond"
	"chimera/internal/event"
	"chimera/internal/rules"
	"chimera/internal/schema"
	"chimera/internal/types"
)

// Layout differential at the engine level: ColumnarEB on and off must
// produce byte-identical databases and identical rule-execution counts
// on identical workloads — the columnar Event Base may only change how
// the triggering scan reads arrivals, never what the rules do.

func TestDifferentialColumnarVsRowStore(t *testing.T) {
	prod := rules.Options{UseFilter: true, Incremental: true, SharedPlan: true, Workers: 4}
	for trial := 0; trial < 15; trial++ {
		seed := int64(7000 + trial)
		ops := genWorkload(rand.New(rand.NewSource(seed)), 60)

		row := buildDiffDB(t, Options{Support: prod, ColumnarEB: false}, seed)
		runDiffWorkload(t, row, ops)

		col := buildDiffDB(t, Options{Support: prod, ColumnarEB: true}, seed)
		runDiffWorkload(t, col, ops)

		// Tiny segments force the columnar scan across seals + compaction.
		small := buildDiffDB(t, Options{Support: prod, ColumnarEB: true, SegmentSize: 4}, seed)
		runDiffWorkload(t, small, ops)

		fpRow, fpCol, fpSmall := fingerprint(row), fingerprint(col), fingerprint(small)
		if fpRow != fpCol {
			t.Fatalf("trial %d: row-store and columnar databases diverged:\n--- row\n%s--- columnar\n%s",
				trial, fpRow, fpCol)
		}
		if fpRow != fpSmall {
			t.Fatalf("trial %d: small-segment columnar database diverged", trial)
		}
		if row.Stats().RuleExecutions != col.Stats().RuleExecutions {
			t.Fatalf("trial %d: rule executions diverged: row %d vs columnar %d",
				trial, row.Stats().RuleExecutions, col.Stats().RuleExecutions)
		}
	}
}

// TestMultiSessionColumnarMatchesRowStore drives concurrent transaction
// lines (each line has its own columnar Event Base and Trigger Support
// session) under both layouts: every line's rule work must land
// identically. This is the multi-session leg of the layout differential.
func TestMultiSessionColumnarMatchesRowStore(t *testing.T) {
	run := func(columnar bool) [][]int64 {
		const lines, perLine = 4, 8
		opts := DefaultOptions()
		opts.ColumnarEB = columnar
		opts.MaxSessions = lines
		opts.LockWait = 5 * time.Second
		opts.SegmentSize = 4 // seal + compact within each line
		db := multiStockDB(t, opts, lines)

		var wg sync.WaitGroup
		for i := 0; i < lines; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				class := fmt.Sprintf("stock%d", i)
				for j := 0; j < perLine; j++ {
					err := db.Run(func(tx *Txn) error {
						_, err := tx.Create(class, map[string]types.Value{
							"quantity": types.Int(int64(30 + 20*j)), "maxquantity": types.Int(70),
						})
						return err
					})
					if err != nil {
						t.Errorf("line %d txn %d: %v", i, j, err)
						return
					}
				}
			}(i)
		}
		wg.Wait()

		// Per-class quantities, sorted by the store's Select order, plus
		// the global stats: the layouts must agree on all of it.
		out := make([][]int64, 0, lines+1)
		for i := 0; i < lines; i++ {
			oids, _ := db.Store().Select(fmt.Sprintf("stock%d", i))
			qs := make([]int64, 0, len(oids))
			for _, oid := range oids {
				o, ok := db.Store().Get(oid)
				if !ok {
					t.Fatalf("object %v lost", oid)
				}
				qs = append(qs, o.MustGet("quantity").AsInt())
			}
			out = append(out, qs)
		}
		st := db.Stats()
		out = append(out, []int64{st.RuleExecutions, st.Events, st.Blocks})
		return out
	}

	row := run(false)
	col := run(true)
	for i := range row {
		if len(row[i]) != len(col[i]) {
			t.Fatalf("part %d: lengths differ: row %v vs columnar %v", i, row[i], col[i])
		}
		for j := range row[i] {
			if row[i][j] != col[i][j] {
				t.Errorf("part %d[%d]: row %d, columnar %d", i, j, row[i][j], col[i][j])
			}
		}
	}
}

// multiStockDB builds a multi-session database with one capped stock
// class and capping rule per line (the TestMultiSessionParallelTriggering
// shape, parameterized on Options).
func multiStockDB(t *testing.T, opts Options, lines int) *DB {
	t.Helper()
	db := New(opts)
	for i := 0; i < lines; i++ {
		class := fmt.Sprintf("stock%d", i)
		if err := db.DefineClass(class,
			schema.Attribute{Name: "quantity", Kind: types.KindInt},
			schema.Attribute{Name: "maxquantity", Kind: types.KindInt},
		); err != nil {
			t.Fatal(err)
		}
		err := db.DefineRule(
			rules.Def{
				Name:     "cap" + class,
				Target:   class,
				Event:    calculus.P(event.Create(class)),
				Coupling: rules.Immediate,
			},
			Body{
				Condition: cond.Formula{Atoms: []cond.Atom{
					cond.Class{Class: class, Var: "S"},
					cond.Occurred{Event: calculus.P(event.Create(class)), Var: "S"},
					cond.Compare{
						L:  cond.Attr{Var: "S", Attr: "quantity"},
						Op: cond.CmpGt,
						R:  cond.Attr{Var: "S", Attr: "maxquantity"},
					},
				}},
				Action: act.Action{Statements: []act.Statement{
					act.Modify{Class: class, Attr: "quantity", Var: "S",
						Value: cond.Attr{Var: "S", Attr: "maxquantity"}},
				}},
			})
		if err != nil {
			t.Fatal(err)
		}
	}
	return db
}
