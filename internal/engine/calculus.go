package engine

import (
	"chimera/internal/calculus"
	"chimera/internal/event"
	"chimera/internal/rules"
)

// calculusPrimitives returns the primitive event types a rule definition
// mentions (indirection avoids importing calculus in two files for one
// call each).
func calculusPrimitives(def rules.Def) []event.Type {
	return calculus.Primitives(def.Event)
}
