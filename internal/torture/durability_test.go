package torture

import (
	"errors"
	"testing"

	"chimera"
	"chimera/internal/engine"
	"chimera/internal/storage"
	"chimera/internal/types"
)

// durTortureOpts is the durable budgeted configuration: MemStore WAL
// (durable on append), small segments, a gas ceiling.
func durTortureOpts(store engine.SegmentStore, gas int64) chimera.Options {
	opts := chimera.DefaultOptions()
	opts.Durability = engine.DurabilityOptions{Store: store, Fsync: engine.FsyncOff}
	opts.SegmentSize = 8
	opts.GasLimit = gas
	return opts
}

// TestTorture_Durability_CrashDuringBudgetKill commits a prefix, then
// opens a transaction that is budget-killed in its first block and
// "crashes" (clones the store) at three instants: before the kill, at
// the moment of the kill (rollback not yet logged), and after the
// rollback. All three clones must recover to the same committed state
// — the killed block's ops never reached the WAL — and the recovered
// engine must be fully usable, budgets included.
func TestTorture_Durability_CrashDuringBudgetKill(t *testing.T) {
	store := storage.NewMemStore()
	// Gas below one adversarial sweep's cost: any flood of the hot
	// classes dies in its first triggering determination, while the
	// rule-free "plain" class leaves the budget untouched.
	const gas = 50
	db, err := engine.Open(durTortureOpts(store, gas))
	if err != nil {
		t.Fatal(err)
	}
	if err := chimera.Load(db, "class plain (n: integer)\n"+AdversarialProgram(31, 4, 16, 3)); err != nil {
		t.Fatal(err)
	}
	// Committed prefix: rule-free objects, no triggering pressure.
	if err := db.Run(func(tx *chimera.Txn) error {
		for i := 0; i < 3; i++ {
			if _, err := tx.Create("plain", map[string]types.Value{
				"n": types.Int(int64(i))}); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		t.Fatalf("committed prefix: %v", err)
	}
	if err := db.SyncWAL(); err != nil {
		t.Fatal(err)
	}
	boundaryClone := store.Clone()

	// The doomed transaction: flood enough occurrences before the first
	// block boundary that the very first triggering determination blows
	// the gas budget — nothing of this transaction ever reaches the WAL
	// except its begin record.
	tx, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := flood(tx, 200, 3); err != nil {
		t.Fatal(err)
	}
	err = tx.EndLine()
	if !errors.Is(err, chimera.ErrGasExhausted) {
		t.Fatalf("want ErrGasExhausted in the first block, got %v", err)
	}
	if err := db.SyncWAL(); err != nil {
		t.Fatal(err)
	}
	killClone := store.Clone() // crash before the rollback is logged
	if err := tx.Rollback(); err != nil {
		t.Fatal(err)
	}
	if err := db.SyncWAL(); err != nil {
		t.Fatal(err)
	}
	rollbackClone := store.Clone() // crash after the rollback record

	recoverState := func(name string, clone *storage.MemStore) string {
		t.Helper()
		rdb, rtx, _, err := engine.Recover(durTortureOpts(clone, gas))
		if err != nil {
			t.Fatalf("%s: recover: %v", name, err)
		}
		if rtx != nil {
			// A trailing open (empty) transaction is legal for the
			// kill-instant clone; it must hold no occurrences.
			if got := rtx.Base().Len(); got != 0 {
				t.Fatalf("%s: recovered open transaction holds %d occurrences; the killed block leaked into the WAL", name, got)
			}
			if err := rtx.Rollback(); err != nil {
				t.Fatalf("%s: rollback recovered txn: %v", name, err)
			}
		}
		fp := objFingerprint(rdb)
		// The recovered engine must still work — and still enforce its
		// budget on a fresh adversarial flood.
		if err := rdb.Run(func(tx *chimera.Txn) error {
			_, err := tx.Create("plain", map[string]types.Value{"n": types.Int(99)})
			return err
		}); err != nil {
			t.Fatalf("%s: recovered engine unusable: %v", name, err)
		}
		ktx, err := rdb.Begin()
		if err != nil {
			t.Fatal(err)
		}
		if err := flood(ktx, 200, 3); err != nil {
			t.Fatal(err)
		}
		if err := ktx.EndLine(); !errors.Is(err, chimera.ErrGasExhausted) {
			t.Fatalf("%s: recovered engine lost its budget: %v", name, err)
		}
		if err := ktx.Rollback(); err != nil {
			t.Fatal(err)
		}
		return fp
	}

	want := recoverState("boundary", boundaryClone)
	if got := recoverState("kill-instant", killClone); got != want {
		t.Fatalf("crash at the kill instant diverged from the committed state:\n%s\nwant:\n%s", got, want)
	}
	if got := recoverState("post-rollback", rollbackClone); got != want {
		t.Fatalf("crash after rollback diverged from the committed state:\n%s\nwant:\n%s", got, want)
	}
}

// TestTorture_Durability_KillsAcrossCommits interleaves committed
// transactions with budget-killed ones on a durable engine, crash-
// cloning after every kill: each recovery must land exactly on the
// state of the commits so far, never seeing a killed transaction.
func TestTorture_Durability_KillsAcrossCommits(t *testing.T) {
	store := storage.NewMemStore()
	const gas = 50
	db, err := engine.Open(durTortureOpts(store, gas))
	if err != nil {
		t.Fatal(err)
	}
	if err := chimera.Load(db, "class plain (n: integer)\n"+AdversarialProgram(37, 4, 16, 3)); err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 4; round++ {
		// One committed transaction on the rule-free class...
		if err := db.Run(func(tx *chimera.Txn) error {
			_, err := tx.Create("plain", map[string]types.Value{
				"n": types.Int(int64(round))})
			return err
		}); err != nil {
			t.Fatalf("round %d commit: %v", round, err)
		}
		want := objFingerprint(db)
		// ...then a budget-killed one, with a crash right at the kill.
		tx, err := db.Begin()
		if err != nil {
			t.Fatal(err)
		}
		if err := flood(tx, 200, 3); err != nil {
			t.Fatal(err)
		}
		if err := tx.EndLine(); !errors.Is(err, chimera.ErrGasExhausted) {
			t.Fatalf("round %d: want ErrGasExhausted, got %v", round, err)
		}
		if err := db.SyncWAL(); err != nil {
			t.Fatal(err)
		}
		clone := store.Clone()
		if err := tx.Rollback(); err != nil {
			t.Fatal(err)
		}
		rdb, rtx, _, err := engine.Recover(durTortureOpts(clone, gas))
		if err != nil {
			t.Fatalf("round %d: recover: %v", round, err)
		}
		if rtx != nil {
			if err := rtx.Rollback(); err != nil {
				t.Fatal(err)
			}
		}
		if got := objFingerprint(rdb); got != want {
			t.Fatalf("round %d: recovery saw the killed transaction:\n%s\nwant:\n%s", round, got, want)
		}
	}
	if got := db.Stats().GasKills; got != 4 {
		t.Fatalf("GasKills = %d, want 4", got)
	}
}
