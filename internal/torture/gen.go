// Package torture holds the adversarial-input and resource-governance
// test matrix: deterministic generators for pathological rule sets
// (deep nesting, long precedence chains, memo-busting overlap) and the
// TestTorture_* suites that drive them against the engine under gas,
// wall-clock and capacity budgets. Everything is seeded and
// reproducible; the suite is CI tier and race-clean.
package torture

import (
	"fmt"
	"math/rand"
	"strings"
)

// ClassSrc renders k class definitions c0..c{k-1}, each with one
// integer attribute n — the schema every generated program shares.
func ClassSrc(k int) string {
	var b strings.Builder
	for i := 0; i < k; i++ {
		fmt.Fprintf(&b, "class c%d (n: integer)\n", i)
	}
	return b.String()
}

// ClassName returns the i'th generated class name.
func ClassName(i int) string { return fmt.Sprintf("c%d", i) }

// primSrc picks a random set-level primitive event over the k classes.
func primSrc(r *rand.Rand, k int) string {
	c := ClassName(r.Intn(k))
	switch r.Intn(3) {
	case 0:
		return "create(" + c + ")"
	case 1:
		return "delete(" + c + ")"
	default:
		return "modify(" + c + ".n)"
	}
}

// setOps are the set-level infix operators (disjunction, conjunction,
// precedence). Generated expressions stay negation-free and set-level
// so every composition is valid calculus.
var setOps = []string{",", "+", "<"}

// DeepNestSrc renders a right-nested, fully parenthesized event
// expression of the given nesting depth — the parser-recursion and
// evaluator-depth torture shape.
func DeepNestSrc(r *rand.Rand, depth, k int) string {
	if depth <= 0 {
		return primSrc(r, k)
	}
	op := setOps[r.Intn(len(setOps))]
	return "(" + primSrc(r, k) + " " + op + " " + DeepNestSrc(r, depth-1, k) + ")"
}

// PrecChainSrc renders a precedence chain of n primitives over one
// class — the pathological shape for the ∃t' probe, every link sharing
// the same primitive types.
func PrecChainSrc(class string, n int) string {
	parts := make([]string, 0, n)
	ops := []string{"create(%s)", "delete(%s)", "modify(%s.n)"}
	for i := 0; i < n; i++ {
		parts = append(parts, fmt.Sprintf(ops[i%len(ops)], class))
	}
	return strings.Join(parts, " < ")
}

// AdversarialProgram renders a complete program: nClasses classes and
// nRules rules whose event expressions are deep random nests. Distinct
// random shapes per rule bust cross-rule plan sharing (each rule
// contributes mostly-unique nodes to the shared DAG), which is exactly
// the memo-unfriendly load the budget machinery must bound.
func AdversarialProgram(seed int64, nRules, depth, nClasses int) string {
	r := rand.New(rand.NewSource(seed))
	var b strings.Builder
	b.WriteString(ClassSrc(nClasses))
	for i := 0; i < nRules; i++ {
		fmt.Fprintf(&b, "define r%d priority %d\nevents %s\nend\n",
			i, i+1, DeepNestSrc(r, depth, nClasses))
	}
	return b.String()
}

// PrecChainProgram renders nRules rules that are all long precedence
// chains over overlapping classes — the plan DAG shares the primitives
// but every chain node above them is distinct.
func PrecChainProgram(nRules, chainLen, nClasses int) string {
	var b strings.Builder
	b.WriteString(ClassSrc(nClasses))
	for i := 0; i < nRules; i++ {
		fmt.Fprintf(&b, "define r%d priority %d\nevents %s\nend\n",
			i, i+1, PrecChainSrc(ClassName(i%nClasses), chainLen))
	}
	return b.String()
}

// GarbageSrc renders a deterministic pseudo-random byte soup drawn from
// the language's own alphabet — hostile parser input that is dense in
// almost-valid prefixes.
func GarbageSrc(seed int64, n int) string {
	r := rand.New(rand.NewSource(seed))
	const alphabet = "abcdefg0123456789()<>+,=.-*/;:\"' \n\tclassdefineeventsconditionactionend"
	var b strings.Builder
	for i := 0; i < n; i++ {
		b.WriteByte(alphabet[r.Intn(len(alphabet))])
	}
	return b.String()
}
