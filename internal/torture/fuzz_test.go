package torture

import (
	"errors"
	"testing"

	"chimera"
	"chimera/internal/types"
)

// FuzzAdversarialRules feeds arbitrary programs into a tightly budgeted
// engine and drives a workload against whatever loads. The invariants:
// no panic, no race, resource exhaustion surfaces only as the typed
// budget errors, every failed transaction rolls back, and the engine
// stays usable afterwards. Hostile programs are free to fail to parse
// or load — silently succeeding would be the bug.
func FuzzAdversarialRules(f *testing.F) {
	f.Add(AdversarialProgram(1, 4, 8, 3), uint16(100))
	f.Add(AdversarialProgram(2, 8, 24, 3), uint16(30))
	f.Add(PrecChainProgram(3, 12, 2), uint16(50))
	f.Add(ClassSrc(2)+"define r priority 1\nevents create(c0) < delete(c1)\nend\n", uint16(5))
	f.Add(GarbageSrc(7, 512), uint16(10))
	f.Fuzz(func(t *testing.T, src string, gas uint16) {
		opts := chimera.DefaultOptions()
		opts.GasLimit = int64(gas%1024) + 1
		opts.MaxEvents = 256
		opts.MaxRuleExecutions = 64
		db := chimera.OpenWith(opts)
		if err := chimera.Load(db, src); err != nil {
			return // hostile input may be rejected at the front door
		}
		classes := db.Schema().Names()
		if len(classes) > 8 {
			classes = classes[:8]
		}
		budgetErr := func(err error) bool {
			return errors.Is(err, chimera.ErrGasExhausted) ||
				errors.Is(err, chimera.ErrDeadlineExceeded) ||
				errors.Is(err, chimera.ErrEventLimit) ||
				errors.Is(err, chimera.ErrRuleLimit)
		}
		err := db.Run(func(tx *chimera.Txn) error {
			for round := 0; round < 4; round++ {
				for _, class := range classes {
					if _, err := tx.Create(class, map[string]types.Value{
						"n": types.Int(int64(round))}); err != nil {
						return err
					}
				}
				if err := tx.EndLine(); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil && !budgetErr(err) {
			// Schema-shaped failures (attribute mismatches in fuzz-parsed
			// classes) are legal; what must never happen is an untyped
			// budget kill, so exhaustion counted in Stats must match a
			// typed error.
			st := db.Stats()
			if st.GasKills+st.DeadlineKills+st.EventLimitHits+st.RuleLimitHits > 0 {
				t.Fatalf("budget kill surfaced as an untyped error: %v", err)
			}
		}
		if db.ActiveLines() != 0 {
			t.Fatalf("line leaked after fuzz transaction (err=%v)", err)
		}
		// The engine must survive whatever just happened.
		if err := db.Run(func(tx *chimera.Txn) error { return nil }); err != nil {
			t.Fatalf("engine unusable after fuzz transaction: %v", err)
		}
	})
}
