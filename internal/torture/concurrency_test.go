package torture

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"chimera"
	"chimera/internal/types"
)

// TestTorture_Concurrency_KilledSessionReleasesPeers is the satellite
// regression for the engine.Run rollback audit: a latch-holding session
// that is budget-killed mid-sweep must roll back and release its
// latches, and a peer contending for the same object must then commit —
// a killed session never deadlocks its peers.
func TestTorture_Concurrency_KilledSessionReleasesPeers(t *testing.T) {
	opts := adversarialOpts(500)
	opts.MaxSessions = 2
	opts.LockWait = 20 * time.Millisecond
	db := chimera.OpenWith(opts)
	// Rules cover only the generated hot classes; the contended object
	// is rule-free so the peer's work stays far under budget.
	if err := chimera.Load(db, "class plain (n: integer)\n"+AdversarialProgram(23, 6, 20, 3)); err != nil {
		t.Fatal(err)
	}
	var contended types.OID
	if err := db.Run(func(tx *chimera.Txn) error {
		oid, err := tx.Create("plain", map[string]types.Value{"n": types.Int(0)})
		contended = oid
		return err
	}); err != nil {
		t.Fatal(err)
	}

	latched := make(chan struct{})
	killerDone := make(chan error, 1)
	go func() {
		killerDone <- func() error {
			tx, err := db.Begin()
			if err != nil {
				return err
			}
			// Take the exclusive latch on the contended object, then flood
			// hot events until the gas budget kills the sweep.
			if err := tx.Modify(contended, "n", types.Int(1)); err != nil {
				tx.Rollback() //nolint:errcheck
				return err
			}
			close(latched)
			for i := 0; i < 256; i++ {
				if err := flood(tx, 16, 3); err != nil {
					tx.Rollback() //nolint:errcheck
					return err
				}
				if err := tx.EndLine(); err != nil {
					if rerr := tx.Rollback(); rerr != nil {
						return fmt.Errorf("rollback after kill: %w", rerr)
					}
					return err // the expected budget fault
				}
			}
			tx.Rollback() //nolint:errcheck
			return errors.New("flood never killed")
		}()
	}()

	<-latched
	// The peer retries against the latched object until the killed
	// session rolls back and frees it.
	deadline := time.Now().Add(10 * time.Second)
	committed := false
	for !committed {
		if time.Now().After(deadline) {
			t.Fatal("peer never committed: killed session did not release its latches")
		}
		err := db.Run(func(tx *chimera.Txn) error {
			return tx.Modify(contended, "n", types.Int(2))
		})
		switch {
		case err == nil:
			committed = true
		case errors.Is(err, chimera.ErrConflict):
			// Still latched by the killer; retry.
		default:
			t.Fatalf("peer hit a non-conflict error: %v", err)
		}
	}
	if err := <-killerDone; !errors.Is(err, chimera.ErrGasExhausted) {
		t.Fatalf("killer session: want ErrGasExhausted, got %v", err)
	}
	if db.ActiveLines() != 0 {
		t.Fatal("lines leaked")
	}
	if got := db.Stats().GasKills; got != 1 {
		t.Fatalf("GasKills = %d, want 1", got)
	}
}

// TestTorture_Concurrency_ParallelKills floods from every session slot
// at once: each line must die of its own typed budget fault (or lose a
// latch race), every rollback must be clean, and the engine must come
// out reusable with no lines leaked.
func TestTorture_Concurrency_ParallelKills(t *testing.T) {
	const sessions = 4
	opts := adversarialOpts(400)
	opts.MaxSessions = sessions
	opts.LockWait = 20 * time.Millisecond
	db := chimera.OpenWith(opts)
	// One class per session so the floods contend only inside the
	// engine (shared plan DAG, commit latch), not on class extensions.
	if err := chimera.Load(db, AdversarialProgram(29, 2*sessions, 14, sessions)); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, sessions)
	for s := 0; s < sessions; s++ {
		go func(s int) {
			done <- db.Run(func(tx *chimera.Txn) error {
				for i := 0; i < 256; i++ {
					for j := 0; j < 16; j++ {
						if _, err := tx.Create(ClassName(s),
							map[string]types.Value{"n": types.Int(int64(j))}); err != nil {
							return err
						}
					}
					if err := tx.EndLine(); err != nil {
						return err
					}
				}
				return errors.New("flood never killed")
			})
		}(s)
	}
	kills := 0
	for s := 0; s < sessions; s++ {
		err := <-done
		switch {
		case errors.Is(err, chimera.ErrGasExhausted):
			kills++
		case errors.Is(err, chimera.ErrConflict):
			// A latch race losing to a sibling flood is a legal outcome.
		default:
			t.Fatalf("session ended with unexpected error: %v", err)
		}
	}
	if kills == 0 {
		t.Fatal("no session was budget-killed")
	}
	if db.ActiveLines() != 0 {
		t.Fatal("lines leaked")
	}
	// Reusable afterwards.
	if err := db.Run(func(tx *chimera.Txn) error {
		_, err := tx.Create(ClassName(0), map[string]types.Value{"n": types.Int(1)})
		return err
	}); err != nil && !errors.Is(err, chimera.ErrGasExhausted) {
		t.Fatalf("engine unusable after parallel kills: %v", err)
	}
}
