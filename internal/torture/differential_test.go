package torture

import (
	"errors"
	"testing"

	"chimera"
	"chimera/internal/rules"
	"chimera/internal/types"
)

// driveMarked runs a deterministic workload against a single-session
// database and returns the trace of per-rule marks after every block —
// the observable triggering behavior the differential compares.
func driveMarked(t *testing.T, db *chimera.DB, blocks, perBlock, classes int) []string {
	t.Helper()
	tx, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	var trace []string
	for b := 0; b < blocks; b++ {
		for i := 0; i < perBlock; i++ {
			if _, err := tx.Create(ClassName((b*perBlock+i)%classes),
				map[string]types.Value{"n": types.Int(int64(i))}); err != nil {
				t.Fatal(err)
			}
		}
		if err := tx.EndLine(); err != nil {
			t.Fatal(err)
		}
		trace = append(trace, marksFingerprint(db))
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	return trace
}

// TestTorture_Differential_DegradationModes drives identical
// adversarial rule sets and workloads through the fully optimized
// evaluator, the naive evaluator, and the optimized evaluator with a
// generous (never-tripping) budget. All three must produce an identical
// block-by-block triggering trace: degradation knobs and budget
// instrumentation may change how much work evaluation does, never what
// the rules observe.
func TestTorture_Differential_DegradationModes(t *testing.T) {
	programs := map[string]string{
		"deep-nest":  AdversarialProgram(41, 6, 18, 3),
		"prec-chain": PrecChainProgram(6, 20, 3),
	}
	configs := map[string]chimera.Options{
		"optimized": chimera.DefaultOptions(),
		"naive": {Support: rules.Options{
			UseFilter: false, Incremental: false, SharedPlan: false, Workers: 1}},
		"budgeted": adversarialOpts(100_000_000),
	}
	for pname, program := range programs {
		t.Run(pname, func(t *testing.T) {
			traces := make(map[string][]string)
			for cname, opts := range configs {
				db := loadDB(t, opts, program)
				traces[cname] = driveMarked(t, db, 12, 6, 3)
			}
			want := traces["optimized"]
			for cname, got := range traces {
				if len(got) != len(want) {
					t.Fatalf("%s: trace length %d, want %d", cname, len(got), len(want))
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("%s diverged from optimized at block %d:\n%s\nwant:\n%s",
							cname, i, got[i], want[i])
					}
				}
			}
		})
	}
}

// TestTorture_Differential_KillDeterminism kills the same adversarial
// transaction on two identically configured engines: both must die of
// the same typed error at the same block, and the rolled-back engines
// must agree on every observable afterwards.
func TestTorture_Differential_KillDeterminism(t *testing.T) {
	run := func() (killBlock int, err error, db *chimera.DB) {
		db = loadDB(t, adversarialOpts(1000), AdversarialProgram(5, 8, 20, 3))
		tx, berr := db.Begin()
		if berr != nil {
			t.Fatal(berr)
		}
		for b := 0; b < 256; b++ {
			if ferr := flood(tx, 8, 3); ferr != nil {
				t.Fatal(ferr)
			}
			if eerr := tx.EndLine(); eerr != nil {
				if rerr := tx.Rollback(); rerr != nil {
					t.Fatal(rerr)
				}
				return b, eerr, db
			}
		}
		t.Fatal("flood never killed")
		return 0, nil, nil
	}
	b1, e1, db1 := run()
	b2, e2, db2 := run()
	if b1 != b2 {
		t.Fatalf("kill block diverged: %d vs %d (gas accounting must be deterministic)", b1, b2)
	}
	if !errors.Is(e1, chimera.ErrGasExhausted) || !errors.Is(e2, chimera.ErrGasExhausted) {
		t.Fatalf("kills must be typed: %v / %v", e1, e2)
	}
	if objFingerprint(db1) != objFingerprint(db2) {
		t.Fatal("rolled-back engines diverged")
	}
}
