package torture

import (
	"errors"
	"testing"
	"time"

	"chimera"
	"chimera/internal/act"
	"chimera/internal/calculus"
	"chimera/internal/cond"
	"chimera/internal/engine"
	"chimera/internal/event"
	"chimera/internal/rules"
	"chimera/internal/types"
)

// adversarialOpts is the standard budgeted configuration the eval
// tortures share: default engine, the given gas ceiling.
func adversarialOpts(gas int64) chimera.Options {
	opts := chimera.DefaultOptions()
	opts.GasLimit = gas
	return opts
}

// --- Eval: the budget mechanism itself --------------------------------

func TestTorture_Eval_BudgetGasBoundary(t *testing.T) {
	// Gas N admits exactly N charges; charge N+1 faults with the typed
	// error, and the budget stays latched for every later charge.
	const gas = 10
	b := calculus.NewBudget(gas, time.Time{})
	err := calculus.CatchBudget(func() {
		for i := 0; i < gas; i++ {
			b.Charge()
		}
	})
	if err != nil {
		t.Fatalf("charges within budget must not fault: %v", err)
	}
	err = calculus.CatchBudget(func() { b.Charge() })
	if !errors.Is(err, calculus.ErrGasExhausted) {
		t.Fatalf("want ErrGasExhausted, got %v", err)
	}
	if got := b.Err(); !errors.Is(got, calculus.ErrGasExhausted) {
		t.Fatalf("budget must latch its error, got %v", got)
	}
	// Latched: every subsequent charge faults immediately.
	for i := 0; i < 3; i++ {
		if err := calculus.CatchBudget(func() { b.Charge() }); !errors.Is(err, calculus.ErrGasExhausted) {
			t.Fatalf("latched budget charge %d: want ErrGasExhausted, got %v", i, err)
		}
	}
}

func TestTorture_Eval_BudgetDeadline(t *testing.T) {
	// An already-expired deadline fires within one probe stride of
	// charges, with unlimited gas.
	b := calculus.NewBudget(0, time.Now().Add(-time.Second))
	err := calculus.CatchBudget(func() {
		for i := 0; i < 256; i++ {
			b.Charge()
		}
	})
	if !errors.Is(err, calculus.ErrDeadlineExceeded) {
		t.Fatalf("want ErrDeadlineExceeded, got %v", err)
	}
}

func TestTorture_Eval_BudgetConcurrentWorkers(t *testing.T) {
	// Sibling workers hammering one budget: exactly one error wins the
	// latch, every worker observes a typed fault, and ThrowBudget relays
	// the first collected fault on the coordinator.
	b := calculus.NewBudget(100, time.Time{})
	const workers = 8
	errs := make([]error, workers)
	done := make(chan int, workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			errs[w] = calculus.CatchBudget(func() {
				for i := 0; i < 1000; i++ {
					b.Charge()
				}
			})
			done <- w
		}(w)
	}
	for i := 0; i < workers; i++ {
		<-done
	}
	faults := 0
	for _, err := range errs {
		if err != nil {
			if !errors.Is(err, calculus.ErrGasExhausted) {
				t.Fatalf("worker fault must be typed, got %v", err)
			}
			faults++
		}
	}
	if faults == 0 {
		t.Fatal("8000 charges against gas 100 must fault at least one worker")
	}
	var relayed error
	func() {
		defer calculus.RecoverBudget(&relayed)
		for _, err := range errs {
			calculus.ThrowBudget(err)
		}
	}()
	if !errors.Is(relayed, calculus.ErrGasExhausted) {
		t.Fatalf("ThrowBudget must relay the typed fault, got %v", relayed)
	}
}

// --- Eval: engine-level kills -----------------------------------------

func TestTorture_Eval_GasKill(t *testing.T) {
	db := loadDB(t, adversarialOpts(200), AdversarialProgram(3, 8, 24, 3))
	tx, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := flood(tx, 64, 3); err != nil {
		t.Fatal(err)
	}
	err = tx.EndLine()
	if !errors.Is(err, chimera.ErrGasExhausted) {
		t.Fatalf("want ErrGasExhausted from the flooded block, got %v", err)
	}
	if err := tx.Rollback(); err != nil {
		t.Fatalf("rollback after kill: %v", err)
	}
	if got := db.Stats().GasKills; got != 1 {
		t.Fatalf("GasKills = %d, want 1", got)
	}
	if db.ActiveLines() != 0 {
		t.Fatalf("killed line still active")
	}
}

func TestTorture_Eval_DeadlineKill(t *testing.T) {
	opts := chimera.DefaultOptions()
	opts.TimeBudget = time.Nanosecond // expired before the first charge
	db := loadDB(t, opts, PrecChainProgram(6, 24, 3))
	tx, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	killed := false
	for i := 0; i < 64 && !killed; i++ {
		if err := flood(tx, 8, 3); err != nil {
			t.Fatal(err)
		}
		if err := tx.EndLine(); err != nil {
			if !errors.Is(err, chimera.ErrDeadlineExceeded) {
				t.Fatalf("want ErrDeadlineExceeded, got %v", err)
			}
			killed = true
		}
	}
	if !killed {
		t.Fatal("a 1ns time budget never killed the flood")
	}
	if err := tx.Rollback(); err != nil {
		t.Fatal(err)
	}
	if got := db.Stats().DeadlineKills; got < 1 {
		t.Fatalf("DeadlineKills = %d, want >= 1", got)
	}
}

func TestTorture_Eval_UnlimitedUnaffected(t *testing.T) {
	// GasLimit 0 is unlimited: the same adversarial load that kills a
	// budgeted engine runs to completion.
	db := loadDB(t, chimera.DefaultOptions(), AdversarialProgram(3, 8, 24, 3))
	tx, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := flood(tx, 64, 3); err != nil {
		t.Fatal(err)
	}
	if err := tx.EndLine(); err != nil {
		t.Fatalf("unlimited engine must survive the flood: %v", err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	st := db.Stats()
	if st.GasKills+st.DeadlineKills != 0 {
		t.Fatalf("unlimited engine recorded kills: %+v", st)
	}
}

// --- Error: typed capacity errors and counters ------------------------

func TestTorture_Error_MaxEvents(t *testing.T) {
	opts := chimera.DefaultOptions()
	opts.MaxEvents = 8
	opts.DisableCompaction = true
	db := loadDB(t, opts, ClassSrc(1))
	tx, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := flood(tx, 8, 1); err != nil {
		t.Fatalf("appends within MaxEvents must succeed: %v", err)
	}
	_, err = tx.Create(ClassName(0), map[string]types.Value{"n": types.Int(9)})
	if !errors.Is(err, chimera.ErrEventLimit) {
		t.Fatalf("want ErrEventLimit on occurrence 9, got %v", err)
	}
	if err := tx.Rollback(); err != nil {
		t.Fatal(err)
	}
	if got := db.Stats().EventLimitHits; got != 1 {
		t.Fatalf("EventLimitHits = %d, want 1", got)
	}
}

func TestTorture_Error_MaxSegments(t *testing.T) {
	opts := chimera.DefaultOptions()
	opts.SegmentSize = 4
	opts.MaxSegments = 2
	opts.DisableCompaction = true
	db := loadDB(t, opts, ClassSrc(1))
	tx, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := flood(tx, 8, 1); err != nil { // fills both segments exactly
		t.Fatalf("appends within MaxSegments must succeed: %v", err)
	}
	_, err = tx.Create(ClassName(0), map[string]types.Value{"n": types.Int(9)})
	if !errors.Is(err, chimera.ErrEventLimit) {
		t.Fatalf("want ErrEventLimit when a third segment is needed, got %v", err)
	}
	if err := tx.Rollback(); err != nil {
		t.Fatal(err)
	}
}

func TestTorture_Error_RuleLimit(t *testing.T) {
	// A self-triggering rule (create begets create) must stop at
	// MaxRuleExecutions with the typed error and count the hit.
	opts := chimera.DefaultOptions()
	opts.MaxRuleExecutions = 16
	db := chimera.OpenWith(opts)
	if err := chimera.Load(db, ClassSrc(1)); err != nil {
		t.Fatal(err)
	}
	if err := db.DefineRule(
		rules.Def{Name: "loop", Event: calculus.P(event.Create(ClassName(0)))},
		engine.Body{Action: act.Action{Statements: []act.Statement{
			act.Create{Class: ClassName(0), Once: true, Vals: map[string]cond.Term{
				"n": cond.Const{V: types.Int(1)}}},
		}}}); err != nil {
		t.Fatal(err)
	}
	tx, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Create(ClassName(0), map[string]types.Value{"n": types.Int(0)}); err != nil {
		t.Fatal(err)
	}
	err = tx.EndLine()
	if !errors.Is(err, chimera.ErrRuleLimit) {
		t.Fatalf("want ErrRuleLimit from the cascade, got %v", err)
	}
	if err := tx.Rollback(); err != nil {
		t.Fatal(err)
	}
	if got := db.Stats().RuleLimitHits; got != 1 {
		t.Fatalf("RuleLimitHits = %d, want 1", got)
	}
}

func TestTorture_Error_LimitsReport(t *testing.T) {
	opts := chimera.DefaultOptions()
	opts.GasLimit = 123
	opts.TimeBudget = 7 * time.Second
	opts.MaxEvents = 456
	opts.MaxSegments = 9
	db := chimera.OpenWith(opts)
	lim := db.Limits()
	if lim.GasLimit != 123 || lim.TimeBudget != 7*time.Second ||
		lim.MaxEvents != 456 || lim.MaxSegments != 9 || lim.MaxRuleExecutions != 10000 {
		t.Fatalf("Limits() does not reflect the configuration: %+v", lim)
	}
}

func TestTorture_Error_OptionsValidate(t *testing.T) {
	for _, mut := range []func(*chimera.Options){
		func(o *chimera.Options) { o.GasLimit = -1 },
		func(o *chimera.Options) { o.TimeBudget = -time.Second },
		func(o *chimera.Options) { o.MaxEvents = -1 },
		func(o *chimera.Options) { o.MaxSegments = -1 },
	} {
		opts := chimera.DefaultOptions()
		mut(&opts)
		if err := opts.Validate(); err == nil {
			t.Fatalf("negative limit must fail validation: %+v", opts)
		}
	}
}

// --- Lifecycle: kill, roll back, reuse --------------------------------

func TestTorture_Lifecycle_KillRollbackDifferential(t *testing.T) {
	// The acceptance differential: an engine that survived a budget kill
	// and rolled back must afterwards behave exactly like one that never
	// saw the adversarial transaction — same objects, same marks — with
	// the shared plan DAG still serving triggering for the benign load.
	const program = `
class hot (n: integer)
class note (n: integer)
define chain priority 1
events create(hot) < modify(hot.n)
condition hot(S), occurred(create(hot) <= modify(hot.n), S)
action modify(hot.n, S, 0)
end
`
	opts := adversarialOpts(3000)
	killedDB := loadDB(t, opts, program+AdversarialProgram(5, 10, 20, 3))
	refDB := loadDB(t, opts, program+AdversarialProgram(5, 10, 20, 3))

	// Adversarial transaction on killedDB only: flood until the gas
	// budget kills it, then roll back.
	tx, err := killedDB.Begin()
	if err != nil {
		t.Fatal(err)
	}
	killed := false
	for i := 0; i < 64 && !killed; i++ {
		if err := flood(tx, 16, 3); err != nil {
			t.Fatal(err)
		}
		if err := tx.EndLine(); err != nil {
			if !errors.Is(err, chimera.ErrGasExhausted) {
				t.Fatalf("want ErrGasExhausted, got %v", err)
			}
			killed = true
		}
	}
	if !killed {
		t.Fatal("adversarial flood never exhausted gas 3000")
	}
	if err := tx.Rollback(); err != nil {
		t.Fatal(err)
	}

	// Benign follow-up on both engines: triggers the chain rule within
	// budget and commits.
	benign := func(db *chimera.DB) {
		t.Helper()
		tx, err := db.Begin()
		if err != nil {
			t.Fatal(err)
		}
		oid, err := tx.Create("hot", map[string]types.Value{"n": types.Int(5)})
		if err != nil {
			t.Fatal(err)
		}
		if err := tx.EndLine(); err != nil {
			t.Fatal(err)
		}
		if err := tx.Modify(oid, "n", types.Int(7)); err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	benign(killedDB)
	benign(refDB)

	if got, want := objFingerprint(killedDB), objFingerprint(refDB); got != want {
		t.Fatalf("post-kill state diverged from the never-killed reference:\nkilled:\n%s\nreference:\n%s", got, want)
	}
	if killedDB.Stats().GasKills != 1 {
		t.Fatalf("GasKills = %d, want 1", killedDB.Stats().GasKills)
	}
}

func TestTorture_Lifecycle_RunAutoRollback(t *testing.T) {
	// db.Run wraps the kill: the typed error surfaces, the deferred
	// rollback fires, and the engine stays reusable.
	db := loadDB(t, adversarialOpts(200), AdversarialProgram(11, 8, 24, 3))
	err := db.Run(func(tx *chimera.Txn) error {
		for i := 0; i < 64; i++ {
			if err := flood(tx, 16, 3); err != nil {
				return err
			}
			if err := tx.EndLine(); err != nil {
				return err
			}
		}
		return nil
	})
	if !errors.Is(err, chimera.ErrGasExhausted) {
		t.Fatalf("want ErrGasExhausted through Run, got %v", err)
	}
	if db.ActiveLines() != 0 {
		t.Fatal("Run left a line open after the kill")
	}
	// Reuse: an empty transaction still commits.
	if err := db.Run(func(tx *chimera.Txn) error { return nil }); err != nil {
		t.Fatalf("engine unusable after kill: %v", err)
	}
}

func TestTorture_Lifecycle_RepeatedKills(t *testing.T) {
	// Kill the same engine many times in a row; every kill must be
	// typed, every rollback clean, and the counters must add up.
	db := loadDB(t, adversarialOpts(150), AdversarialProgram(17, 8, 24, 3))
	const rounds = 16
	for i := 0; i < rounds; i++ {
		err := db.Run(func(tx *chimera.Txn) error {
			for {
				if err := flood(tx, 16, 3); err != nil {
					return err
				}
				if err := tx.EndLine(); err != nil {
					return err
				}
			}
		})
		if !errors.Is(err, chimera.ErrGasExhausted) {
			t.Fatalf("round %d: want ErrGasExhausted, got %v", i, err)
		}
	}
	if got := db.Stats().GasKills; got != rounds {
		t.Fatalf("GasKills = %d, want %d", got, rounds)
	}
	if db.ActiveLines() != 0 {
		t.Fatal("lines leaked across repeated kills")
	}
}
