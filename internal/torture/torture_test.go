package torture

// The torture matrix. Categories:
//
//	TestTorture_Parse_*        parser-limit boundaries, hostile input
//	TestTorture_Eval_*         gas/deadline budgets, budget mechanism
//	TestTorture_Error_*        typed capacity errors and kill counters
//	TestTorture_Lifecycle_*    kill → rollback → reuse differentials
//	TestTorture_Differential_* optimized vs naive vs budgeted equivalence
//	TestTorture_Concurrency_*  killed sessions vs concurrent peers
//	TestTorture_Durability_*   crash-during-budget-kill recovery
//
// Every test is deterministic (seeded generators, no wall-clock
// dependence except the deadline kills, which use an already-expired
// budget) and race-clean; `make torture` runs the matrix under -race.

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"testing"

	"chimera"
	"chimera/internal/lang"
	"chimera/internal/types"
)

// loadDB builds a database with the given options and program source.
func loadDB(t *testing.T, opts chimera.Options, src string) *chimera.DB {
	t.Helper()
	db := chimera.OpenWith(opts)
	if err := chimera.Load(db, src); err != nil {
		t.Fatalf("load: %v", err)
	}
	return db
}

// flood logs n creates spread over the first k generated classes.
func flood(tx *chimera.Txn, n, k int) error {
	for i := 0; i < n; i++ {
		if _, err := tx.Create(ClassName(i%k), map[string]types.Value{
			"n": types.Int(int64(i))}); err != nil {
			return err
		}
	}
	return nil
}

// objFingerprint renders the committed object population, sorted — the
// clock-insensitive state fingerprint the differentials compare.
func objFingerprint(db *chimera.DB) string {
	var lines []string
	for _, class := range db.Schema().Names() {
		oids, _ := db.Store().Select(class)
		for _, oid := range oids {
			if o, ok := db.Store().Get(oid); ok && o.Class().Name() == class {
				lines = append(lines, o.String())
			}
		}
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

// marksFingerprint renders the per-rule consideration/triggering marks.
func marksFingerprint(db *chimera.DB) string {
	var b strings.Builder
	for _, m := range db.Support().Marks() {
		fmt.Fprintf(&b, "%s lc=%d trig=%v at=%d\n",
			m.Rule, m.LastConsideration, m.Triggered, m.TriggeredAt)
	}
	return b.String()
}

// --- Parse ------------------------------------------------------------

func TestTorture_Parse_NestingBoundary(t *testing.T) {
	nest := func(d int) string {
		return strings.Repeat("(", d) + "create(c0)" + strings.Repeat(")", d)
	}
	cases := []struct {
		name    string
		src     string
		overcap bool
	}{
		{"event at limit", nest(lang.MaxNestingDepth - 2), false},
		{"event over limit", nest(lang.MaxNestingDepth + 8), true},
		{"event far over limit", nest(4 * lang.MaxNestingDepth), true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := lang.ParseExpr(tc.src, "")
			if tc.overcap {
				if !errors.Is(err, lang.ErrTooDeep) {
					t.Fatalf("want ErrTooDeep, got %v", err)
				}
			} else if err != nil {
				t.Fatalf("at-limit expression must parse: %v", err)
			}
		})
	}
}

func TestTorture_Parse_TermNestingBoundary(t *testing.T) {
	ruleWith := func(term string) string {
		return "define r for c0\nevents create\ncondition c0(S), S.n > " + term + "\nend"
	}
	deepParens := func(d int) string {
		return strings.Repeat("(", d) + "1" + strings.Repeat(")", d)
	}
	cases := []struct {
		name    string
		src     string
		overcap bool
	}{
		{"term at limit", ruleWith(deepParens(lang.MaxNestingDepth/2 - 4)), false},
		{"term over limit", ruleWith(deepParens(lang.MaxNestingDepth + 8)), true},
		{"unary chain over limit", ruleWith(strings.Repeat("- ", lang.MaxNestingDepth+8) + "1"), true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := lang.ParseRule(tc.src)
			if tc.overcap {
				if !errors.Is(err, lang.ErrTooDeep) {
					t.Fatalf("want ErrTooDeep, got %v", err)
				}
			} else if err != nil {
				t.Fatalf("at-limit term must parse: %v", err)
			}
		})
	}
}

func TestTorture_Parse_RuleCountBoundary(t *testing.T) {
	program := func(n int) string {
		var b strings.Builder
		b.WriteString(ClassSrc(1))
		for i := 0; i < n; i++ {
			fmt.Fprintf(&b, "define r%d for c0 events create end\n", i)
		}
		return b.String()
	}
	if _, err := lang.ParseProgram(program(lang.MaxProgramRules)); err != nil {
		t.Fatalf("program at rule limit must parse: %v", err)
	}
	_, err := lang.ParseProgram(program(lang.MaxProgramRules + 1))
	if !errors.Is(err, lang.ErrTooManyRules) {
		t.Fatalf("want ErrTooManyRules, got %v", err)
	}
}

func TestTorture_Parse_IdentBoundary(t *testing.T) {
	atLimit := strings.Repeat("a", lang.MaxIdentLen)
	if _, err := lang.ParseExpr("create("+atLimit+")", ""); err != nil {
		t.Fatalf("identifier at limit must lex: %v", err)
	}
	_, err := lang.ParseExpr("create("+atLimit+"a)", "")
	if !errors.Is(err, lang.ErrIdentTooLong) {
		t.Fatalf("want ErrIdentTooLong, got %v", err)
	}
}

func TestTorture_Parse_GarbageNoPanic(t *testing.T) {
	// Hostile byte soups drawn from the language alphabet: the parser may
	// reject them (almost always will) but must never panic and must
	// never loop; each case either parses or returns an error promptly.
	for seed := int64(0); seed < 64; seed++ {
		src := GarbageSrc(seed, 2048)
		if _, err := lang.ParseProgram(src); err == nil {
			// Fine: a lucky soup can be a valid (empty or tiny) program.
			continue
		}
	}
}

func TestTorture_Parse_GeneratedProgramsRoundTrip(t *testing.T) {
	// Every generator output must be valid input: parse, load, and
	// survive a definition round trip.
	for seed := int64(1); seed <= 8; seed++ {
		src := AdversarialProgram(seed, 6, 20, 3)
		if _, err := lang.ParseProgram(src); err != nil {
			t.Fatalf("seed %d: generated program must parse: %v", seed, err)
		}
		db := chimera.OpenWith(chimera.DefaultOptions())
		if err := chimera.Load(db, src); err != nil {
			t.Fatalf("seed %d: generated program must load: %v", seed, err)
		}
	}
	if _, err := lang.ParseProgram(PrecChainProgram(8, 40, 2)); err != nil {
		t.Fatalf("precedence-chain program must parse: %v", err)
	}
}
