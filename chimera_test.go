package chimera_test

import (
	"errors"
	"strings"
	"testing"

	"chimera"
	"chimera/internal/figures"
)

// The full quickstart through the public facade: script loading, the
// paper's rule, transactions.
func TestFacadeQuickstart(t *testing.T) {
	db := chimera.Open()
	if err := chimera.Load(db, `
class stock(name: string, quantity: integer, maxquantity: integer)

define immediate checkStockQty for stock
events create
condition stock(S), occurred(create, S), S.quantity > S.maxquantity
action modify(stock.quantity, S, S.maxquantity)
end`); err != nil {
		t.Fatal(err)
	}
	var oid chimera.OID
	err := db.Run(func(tx *chimera.Txn) error {
		var err error
		oid, err = tx.Create("stock", chimera.Values{
			"name": chimera.Str("bolts"), "quantity": chimera.Int(99),
			"maxquantity": chimera.Int(40)})
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	o, ok := db.Store().Get(oid)
	if !ok {
		t.Fatal("object missing")
	}
	if got := o.MustGet("quantity").AsInt(); got != 40 {
		t.Fatalf("quantity = %d, want 40 (clamped by the rule)", got)
	}
}

func TestFacadeLoadErrors(t *testing.T) {
	db := chimera.Open()
	if err := chimera.Load(db, `class broken(`); err == nil {
		t.Error("syntax error accepted")
	}
	if err := chimera.Load(db, `
define r for ghost
events create
end`); err == nil {
		t.Error("rule over unknown class accepted")
	}
	if err := chimera.Load(db, `class dup(a: integer) class dup(a: integer)`); err == nil {
		t.Error("duplicate class accepted")
	}
}

// Composite rule through the expression-builder API.
func TestFacadeExpressionBuilders(t *testing.T) {
	e := chimera.Conj(
		chimera.Ev(chimera.CreateOf("stock")),
		chimera.Neg(chimera.Ev(chimera.DeleteOf("stock"))),
	)
	got := e.String()
	if got != "create(stock) + -delete(stock)" {
		t.Errorf("String = %q", got)
	}
	parsed, err := chimera.ParseExpr(got, "")
	if err != nil {
		t.Fatal(err)
	}
	if parsed.String() != got {
		t.Errorf("round trip = %q", parsed.String())
	}
}

func TestMustParseExprPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParseExpr did not panic on a syntax error")
		}
	}()
	chimera.MustParseExpr("create(")
}

// The figure index exposed by the figures package covers every artifact
// the per-experiment index of DESIGN.md promises.
func TestFigureIndexComplete(t *testing.T) {
	ids := map[string]bool{}
	for _, f := range figures.All() {
		ids[f.ID] = true
	}
	for _, want := range []string{"1", "2", "3", "4", "5", "6", "7", "x1", "x2", "x4", "x6"} {
		if !ids[want] {
			t.Errorf("figure %s missing from the index", want)
		}
	}
}

// A multi-transaction scenario through the facade: rules survive across
// transactions, triggering state does not, rollback undoes everything.
func TestFacadeTransactionLifecycle(t *testing.T) {
	db := chimera.Open()
	chimera.MustLoad(db, `
class item(n: integer)
class logline(n: integer)

define onItem for item
events create
condition occurred(create, X), X.n > 0
action create(logline, n = X.n)
end`)

	// Rolled-back transaction leaves nothing.
	tx, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Create("item", chimera.Values{"n": chimera.Int(1)}); err != nil {
		t.Fatal(err)
	}
	if err := tx.EndLine(); err != nil {
		t.Fatal(err)
	}
	if err := tx.Rollback(); err != nil {
		t.Fatal(err)
	}
	if db.Store().Len() != 0 {
		t.Fatal("rollback left objects (including the rule's logline)")
	}

	// Committed transaction keeps both the item and the rule's output.
	if err := db.Run(func(tx *chimera.Txn) error {
		_, err := tx.Create("item", chimera.Values{"n": chimera.Int(7)})
		return err
	}); err != nil {
		t.Fatal(err)
	}
	logs, _ := db.Store().Select("logline")
	if len(logs) != 1 {
		t.Fatalf("loglines = %d, want 1", len(logs))
	}
	o, _ := db.Store().Get(logs[0])
	if o.MustGet("n").AsInt() != 7 {
		t.Error("rule copied the wrong value")
	}
}

// The condition of a rule loaded from a script renders back to its
// source shape (spot check of the String methods used by `show rules`).
func TestRuleRendering(t *testing.T) {
	db := chimera.Open()
	chimera.MustLoad(db, `
class stock(quantity: integer, maxquantity: integer)
define r for stock
events create , modify(quantity)
end`)
	st, ok := db.Support().Rule("r")
	if !ok {
		t.Fatal("rule missing")
	}
	if got := st.Def.Event.String(); got != "create(stock) , modify(stock.quantity)" {
		t.Errorf("event rendering = %q", got)
	}
	if !strings.Contains(st.Filter.Set().String(), "create(stock)") {
		t.Errorf("V(E) = %s", st.Filter.Set())
	}
}

// Facade-level snapshot, restore and analysis round trip.
func TestFacadeSnapshotAndAnalysis(t *testing.T) {
	db := chimera.Open()
	chimera.MustLoad(db, `
class item(n: integer)
define r for item
events create
condition occurred(create, X), X.n > 10
action modify(item.n, X, 10)
end`)
	if err := db.Run(func(tx *chimera.Txn) error {
		_, err := tx.Create("item", chimera.Values{"n": chimera.Int(50)})
		return err
	}); err != nil {
		t.Fatal(err)
	}
	rep := chimera.Analyze(db)
	if !rep.Terminates {
		t.Fatalf("clamp-style rule flagged: %s", rep)
	}

	path := t.TempDir() + "/snap.json"
	if err := chimera.Save(db, path); err != nil {
		t.Fatal(err)
	}
	back, err := chimera.Restore(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Store().Len() != 1 {
		t.Fatal("restore lost the object")
	}
	// The restored rule is live.
	if err := back.Run(func(tx *chimera.Txn) error {
		_, err := tx.Create("item", chimera.Values{"n": chimera.Int(99)})
		return err
	}); err != nil {
		t.Fatal(err)
	}
	oids, _ := back.Store().Select("item")
	for _, oid := range oids {
		o, _ := back.Store().Get(oid)
		if o.MustGet("n").AsInt() > 10 {
			t.Fatal("restored rule inactive")
		}
	}
	if _, err := chimera.Restore(path + ".missing"); err == nil {
		t.Fatal("restore of missing file succeeded")
	}
}

// OpenWith honours explicit options (here: a tiny execution budget).
func TestFacadeOpenWith(t *testing.T) {
	db := chimera.OpenWith(chimera.Options{MaxRuleExecutions: 1})
	chimera.MustLoad(db, `
class item(n: integer)
define a for item priority 1
events create
condition occurred(create, X)
action modify(item.n, X, 1)
end
define b for item priority 2
events create
condition occurred(create, X)
action modify(item.n, X, 2)
end`)
	err := db.Run(func(tx *chimera.Txn) error {
		_, err := tx.Create("item", chimera.Values{"n": chimera.Int(0)})
		return err
	})
	if err == nil {
		t.Fatal("execution budget of 1 not enforced with two firing rules")
	}
}

// External signals through the facade.
func TestFacadeRaise(t *testing.T) {
	db := chimera.Open()
	chimera.MustLoad(db, `
class logline(n: integer)
define onPing
events external(ping)
action create(logline, n = 1)
end`)
	if err := db.Run(func(tx *chimera.Txn) error { return tx.Raise("ping") }); err != nil {
		t.Fatal(err)
	}
	if got, _ := db.Store().Select("logline"); len(got) != 1 {
		t.Fatal("external rule did not run")
	}
}

func TestFacadeDerivedCombinators(t *testing.T) {
	a := chimera.Ev(chimera.CreateOf("a"))
	b := chimera.Ev(chimera.CreateOf("b"))
	c := chimera.Ev(chimera.CreateOf("c"))
	if got := chimera.Sequence(a, b, c).String(); got != "create(a) < create(b) < create(c)" {
		t.Errorf("Sequence = %q", got)
	}
	if got := chimera.NoneOf(a, b).String(); got != "-(create(a) , create(b))" {
		t.Errorf("NoneOf = %q", got)
	}
	if got := chimera.SameObject(a, b).String(); got != "create(a) += create(b)" {
		t.Errorf("SameObject = %q", got)
	}
	if got := chimera.AllOf(a, b).String(); got != "create(a) + create(b)" {
		t.Errorf("AllOf = %q", got)
	}
	if got := chimera.AnyOf(a, b).String(); got != "create(a) , create(b)" {
		t.Errorf("AnyOf = %q", got)
	}
}

// The durability surface through the public facade: a durable open, a
// committed transaction through the quickstart rule, a clean close, the
// ErrNeedsRecovery refusal, and a recovery landing on the same state.
func TestFacadeDurability(t *testing.T) {
	dir := t.TempDir()
	fs, err := chimera.NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	opts := chimera.DefaultOptions()
	opts.Durability = chimera.DurabilityOptions{Store: fs, Fsync: chimera.FsyncPerCommit}
	db, err := chimera.OpenDurable(opts)
	if err != nil {
		t.Fatal(err)
	}
	chimera.MustLoad(db, `
class stock(name: string, quantity: integer, maxquantity: integer)

define immediate checkStockQty for stock
events create
condition stock(S), occurred(create, S), S.quantity > S.maxquantity
action modify(stock.quantity, S, S.maxquantity)
end`)
	var oid chimera.OID
	err = db.Run(func(tx *chimera.Txn) error {
		var err error
		oid, err = tx.Create("stock", chimera.Values{
			"name": chimera.Str("bolts"), "quantity": chimera.Int(99),
			"maxquantity": chimera.Int(40)})
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// Closing the database closes its store; reopening the directory is
	// the crash-restart shape.
	if fs, err = chimera.NewFileStore(dir); err != nil {
		t.Fatal(err)
	}
	opts.Durability.Store = fs
	if _, err := chimera.OpenDurable(opts); !errors.Is(err, chimera.ErrNeedsRecovery) {
		t.Fatalf("OpenDurable on a used store = %v, want ErrNeedsRecovery", err)
	}
	rdb, rtx, rep, err := chimera.Recover(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer rdb.Close()
	if rtx != nil {
		t.Fatal("clean shutdown recovered an open transaction")
	}
	if rep == nil {
		t.Fatal("nil recovery report")
	}
	o, ok := rdb.Store().Get(oid)
	if !ok {
		t.Fatal("object missing after recovery")
	}
	if got := o.MustGet("quantity").AsInt(); got != 40 {
		t.Fatalf("recovered quantity = %d, want 40", got)
	}
}
