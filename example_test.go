package chimera_test

import (
	"fmt"

	"chimera"
)

// The paper's Section 2 rule, end to end: a stock item created over its
// maximum is clamped by the checkStockQty trigger before the transaction
// commits.
func Example() {
	db := chimera.Open()
	chimera.MustLoad(db, `
class stock(name: string, quantity: integer, maxquantity: integer)

define immediate checkStockQty for stock
events create
condition stock(S), occurred(create, S), S.quantity > S.maxquantity
action modify(stock.quantity, S, S.maxquantity)
end`)

	var oid chimera.OID
	db.Run(func(tx *chimera.Txn) error {
		var err error
		oid, err = tx.Create("stock", chimera.Values{
			"name": chimera.Str("bolts"), "quantity": chimera.Int(99),
			"maxquantity": chimera.Int(40)})
		return err
	})
	o, _ := db.Store().Get(oid)
	fmt.Println(o)
	// Output:
	// stock(o1){maxquantity: 40, name: "bolts", quantity: 40}
}

// Event expressions follow Figure 1's priorities: conjunction binds
// tighter than disjunction, instance operators tighter than set ones.
func ExampleParseExpr() {
	e, _ := chimera.ParseExpr(
		"create(stock) , modify(stock.quantity) + -delete(stock)", "")
	fmt.Println(e)
	inst, _ := chimera.ParseExpr(
		"create(stock) += modify(stock.quantity) , delete(stock)", "")
	fmt.Println(inst)
	// Output:
	// create(stock) , modify(stock.quantity) + -delete(stock)
	// create(stock) += modify(stock.quantity) , delete(stock)
}

// The static analysis builds the triggering graph and warns about rule
// sets that can cascade forever.
func ExampleAnalyze() {
	db := chimera.Open()
	chimera.MustLoad(db, `
class item(n: integer)

define spawner for item
events create
condition occurred(create, X)
action create(item, n = 0)
end`)
	fmt.Print(chimera.Analyze(db))
	// Output:
	// triggering graph: 1 rules, 1 edges
	//   spawner -> spawner  via create(item)
	// verdict: POTENTIALLY NON-TERMINATING
	//   cycle: spawner -> spawner
}

// Expressions can be assembled programmatically; String renders the
// concrete syntax with minimal parentheses.
func ExampleConj() {
	e := chimera.Conj(
		chimera.Ev(chimera.CreateOf("stock")),
		chimera.NegI(chimera.ConjI(
			chimera.Ev(chimera.CreateOf("order")),
			chimera.Ev(chimera.ModifyOf("order", "delquantity")),
		)),
	)
	fmt.Println(e)
	// Output:
	// create(stock) + -=(create(order) += modify(order.delquantity))
}
