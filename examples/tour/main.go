// Tour: every major capability of the reproduction in one runnable
// program — the class hierarchy, composite-event rules in both the
// script syntax and the Go API, external signals, the static
// termination analysis, snapshots, and the Trigger Support statistics.
//
// Run with: go run ./examples/tour
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"chimera"
	"chimera/internal/act"
	"chimera/internal/cond"
)

func main() {
	db := chimera.Open()

	// 1. Schema with a hierarchy (the paper's Figure 3 classes).
	chimera.MustLoad(db, `
class stock(name: string, quantity: integer, maxquantity: integer)
class order(item: string, quantity: integer, delquantity: integer)
class notFilledOrder extends order ()
class journal(entry: string)

-- The paper's Section 2 rule.
define immediate checkStockQty for stock
events create
condition stock(S), occurred(create, S), S.quantity > S.maxquantity
action modify(stock.quantity, S, S.maxquantity)
end

-- Composite event with an external signal and the instance-oriented
-- negation (the paper's flagship operator): at the nightly signal,
-- escalate every order that was created but whose delivered quantity
-- was never touched. Note the granularity: the set-level form
-- -(create < modify) would be silenced as soon as ANY order was
-- delivered; the instance form asks per object.
define deferred escalate
events external(nightly) + (create(order) += -=modify(order.delquantity))
condition occurred(create(order) += -=modify(order.delquantity), O)
action specialize(O, notFilledOrder)
end`)

	// 2. A rule through the programmatic API: journal every escalation.
	must(chimera.DefineRule(db,
		chimera.RuleDef{
			Name:  "journalEscalation",
			Event: chimera.MustParseExpr("specialize(notFilledOrder)"),
		},
		cond.Formula{Atoms: []cond.Atom{
			cond.Occurred{Event: chimera.MustParseExpr("specialize(notFilledOrder)"), Var: "O"},
		}},
		act.Action{Statements: []act.Statement{
			act.Create{Class: "journal", Once: true, Vals: map[string]cond.Term{
				"entry": cond.Const{V: chimera.Str("orders escalated")}}},
		}},
	))

	// 3. Static analysis before running anything. The verdict here is
	// conservative: the escalate rule contains an instance negation, so
	// its V(E) filter listens to every event — including the ones its own
	// action produces — and the triggering graph reports a potential
	// cycle. At runtime the cycle cannot actually spin (the external
	// signal is consumed at the first consideration), and the engine's
	// execution limit guards the genuinely divergent cases.
	report := chimera.Analyze(db)
	fmt.Print("static analysis:\n", report)
	if !report.Terminates {
		fmt.Println("(conservative: the -= rule listens to everything; the runtime limit guards it)")
	}
	fmt.Println()

	// 4. A business day: stock intake (clamped), two orders, one
	// delivered, then the nightly signal.
	must(db.Run(func(tx *chimera.Txn) error {
		if _, err := tx.Create("stock", chimera.Values{
			"name": chimera.Str("bolts"), "quantity": chimera.Int(120),
			"maxquantity": chimera.Int(40)}); err != nil {
			return err
		}
		delivered, err := tx.Create("order", chimera.Values{
			"item": chimera.Str("bolts"), "quantity": chimera.Int(5),
			"delquantity": chimera.Int(0)})
		if err != nil {
			return err
		}
		if _, err := tx.Create("order", chimera.Values{
			"item": chimera.Str("nuts"), "quantity": chimera.Int(9),
			"delquantity": chimera.Int(0)}); err != nil {
			return err
		}
		if err := tx.EndLine(); err != nil {
			return err
		}
		if err := tx.Modify(delivered, "delquantity", chimera.Int(5)); err != nil {
			return err
		}
		return tx.Raise("nightly")
	}))

	fmt.Println("after the business day:")
	dump(db, "stock", "order", "notFilledOrder", "journal")

	// 5. Snapshot, wipe, restore.
	path := filepath.Join(os.TempDir(), "chimera-tour.json")
	must(chimera.Save(db, path))
	restored, err := chimera.Restore(path)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsnapshot round trip: %d objects restored from %s\n",
		restored.Store().Len(), path)
	os.Remove(path)

	// 6. Statistics.
	st := db.Stats()
	ts := db.Support().Stats()
	fmt.Printf("\nengine: %d transactions, %d events, %d rule executions\n",
		st.Transactions, st.Events, st.RuleExecutions)
	fmt.Printf("trigger support: %d ts evaluations, %d skipped by V(E), %d triggerings\n",
		ts.TsEvaluations, ts.RulesSkipped, ts.Triggerings)
}

func dump(db *chimera.DB, classes ...string) {
	for _, class := range classes {
		oids, err := db.Store().Select(class)
		if err != nil {
			log.Fatal(err)
		}
		for _, oid := range oids {
			if o, ok := db.Store().Get(oid); ok && o.Class().Name() == class {
				fmt.Printf("  %s\n", o)
			}
		}
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
