// Fleet: IoT fleet monitoring on a clock-driven stream session,
// exercising the streaming features the fraud example does not: an
// injectable clock (chimera.NewManualClock) whose ticks run idle sweeps
// on a quiet stream, and a retention window (StreamOptions.Window) that
// both ages occurrences out of the operators' view and keeps the Event
// Base flat on an unbounded feed.
//
// Trucks report temperature telemetry; a dispatcher raises a "patrol"
// heartbeat each minute. Two rules:
//
//   - overheat (consuming immediate): telemetry from a truck running
//     hot creates an alert. Consuming, so each hot reading alerts
//     exactly once — the consumed occurrence cannot re-trigger the rule
//     on later sweeps while it sits in the window;
//
//   - dark (consuming immediate, set negation): a patrol heartbeat
//     with NO telemetry anywhere in the window —
//     external(patrol) + -(modify(truck.temp)). Negation needs a
//     non-empty window to trigger (the R = ∅ reactive guard: an empty
//     window triggers nothing), which is exactly what the heartbeat
//     provides; the retention window is what lets the old telemetry age
//     out so the negation can become active.
//
// The driver runs a healthy phase (telemetry + heartbeat each minute),
// then lets the feed go dark: manual-clock ticks run idle sweeps that
// advance the logical clock past the retention window, and the next
// heartbeat finds the window telemetry-free.
//
// Run with: go run ./examples/fleet
package main

import (
	"fmt"
	"log"
	"time"

	"chimera"
)

const program = `
class truck(id: string, temp: integer)
class alert(kind: string, truck: string)

define consuming immediate overheat for truck
events modify(temp)
condition truck(T), occurred(modify(temp), T), T.temp > 90
action create(alert, kind = "overheat", truck = T.id)
end

define consuming immediate dark
events external(patrol) + -(modify(truck.temp))
action create(alert, kind = "telemetry-gap", truck = "*")
end`

func main() {
	db := chimera.Open()
	chimera.MustLoad(db, program)

	trucks := map[string]chimera.OID{}
	if err := db.Run(func(tx *chimera.Txn) error {
		for id, temp := range map[string]int64{"t1": 70, "t2": 68, "t7": 95} {
			oid, err := tx.Create("truck", chimera.Values{
				"id": chimera.Str(id), "temp": chimera.Int(temp)})
			if err != nil {
				return err
			}
			trucks[id] = oid
		}
		return nil
	}); err != nil {
		log.Fatal(err)
	}

	clk := chimera.NewManualClock(time.Time{})
	s, err := chimera.OpenStream(db, chimera.StreamOptions{
		MaxBatch:      16,
		FlushInterval: time.Second, // manual seconds, not wall seconds
		Window:        8,           // logical ticks of retention
		Clock:         clk,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Healthy phase: five minutes of telemetry, heartbeat after the
	// readings (so no instant shows a patrol with an empty window).
	for minute := 0; minute < 5; minute++ {
		for _, oid := range trucks {
			if err := s.Emit(chimera.ModifyOf("truck", "temp"), oid); err != nil {
				log.Fatal(err)
			}
		}
		if err := s.Raise("patrol"); err != nil {
			log.Fatal(err)
		}
		if err := s.Flush(); err != nil {
			log.Fatal(err)
		}
	}
	report(db, s, "healthy phase (one overheat alert per hot t7 reading, no gap)")

	// The feed goes dark. Nothing arrives; only the clock moves. Each
	// manual tick runs an idle sweep that advances the logical clock, and
	// after enough of them the healthy-phase telemetry has aged past the
	// retention window — both compacted away and invisible to operators.
	const darkTicks = 12
	for i := 0; i < darkTicks; i++ {
		clk.Advance(time.Second)
		waitIdle(s, uint64(i+1))
	}

	// The next heartbeat probes a telemetry-free window: dark fires.
	if err := s.Raise("patrol"); err != nil {
		log.Fatal(err)
	}
	if err := s.Flush(); err != nil {
		log.Fatal(err)
	}
	report(db, s, "after the feed went dark (telemetry-gap alert)")

	if err := s.Close(); err != nil {
		log.Fatal(err)
	}
}

// waitIdle blocks until the session has run at least n idle sweeps —
// tick delivery is asynchronous, so the driver polls rather than assume
// the sweep goroutine has caught up with the clock.
func waitIdle(s *chimera.Stream, n uint64) {
	for s.Stats().IdleSweeps < n {
		time.Sleep(time.Millisecond)
	}
}

func report(db *chimera.DB, s *chimera.Stream, label string) {
	fmt.Println("--", label)
	st := s.Stats()
	fmt.Printf("   stream: %d events / %d batches, %d idle sweeps\n",
		st.Events, st.Batches, st.IdleSweeps)
	fmt.Printf("   window: %d live events in %d segment(s), floor %d\n",
		st.LiveEvents, st.LiveSegments, st.Floor)
	oids, err := db.Store().Select("alert")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("   alerts: %d\n", len(oids))
	for _, oid := range oids {
		if o, ok := db.Store().Get(oid); ok {
			fmt.Println("    ", o)
		}
	}
}
