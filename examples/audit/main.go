// Audit: a watchdog built on negation, the at() occurrence-time-stamp
// predicate, and the Trigger Support's V(E) filters.
//
// Three rules:
//
//   - heartbeat (deferred, negation): any transaction that touches the
//     database WITHOUT recording a sensor reading logs a gap — the
//     reactive-system guard of Section 4.4 keeps it silent on empty
//     transactions;
//
//   - timeline (immediate, at()): every create <= modify(value) sequence
//     on a sensor logs the exact activation instants the at() predicate
//     binds (Section 3.3: one instant per modify);
//
//   - spike (immediate): a reading above threshold right after creation.
//
// The example ends by printing the compiled V(E) variation sets and the
// Trigger Support counters, showing which arrivals each rule listens to
// and how much recomputation the static optimization of Section 5.1
// skipped.
//
// Run with: go run ./examples/audit
package main

import (
	"fmt"
	"log"

	"chimera"
)

const program = `
class sensor(name: string, value: integer, threshold: integer)
class gap(note: string)
class memo(note: string)
class entry(note: string, at: time)

-- The negated disjunction includes the rule's own effect (create(gap)):
-- without it the rule would re-trigger itself forever, because its
-- action's events land in R and the negation of "no sensor activity"
-- holds again at the next check.
define deferred preserving heartbeat
events -(create(sensor) , modify(sensor.value) , create(gap))
action create(gap, note = "transaction without sensor activity")
end

define timeline for sensor
events create <= modify(value)
condition at(create <= modify(value), X, T)
action create(entry, note = "reading", at = T)
end

define spike for sensor priority 1
events create <= modify(value)
condition sensor(S), occurred(create <= modify(value), S),
          S.value > S.threshold
action create(entry, note = "SPIKE")
end`

func main() {
	db := chimera.Open()
	chimera.MustLoad(db, program)

	// Transaction 1: a sensor is created, then read twice within one
	// transaction line. The timeline rule is considered once at the end
	// of that line, and — exactly as Section 3.3 describes — the at()
	// predicate binds BOTH update instants ("the specified composite
	// event occurs twice, exactly when the two updates occur"). The
	// second reading also exceeds the threshold, so spike fires too.
	must(db.Run(func(tx *chimera.Txn) error {
		s, err := tx.Create("sensor", chimera.Values{
			"name": chimera.Str("boiler"), "value": chimera.Int(0),
			"threshold": chimera.Int(50)})
		if err != nil {
			return err
		}
		if err := tx.EndLine(); err != nil {
			return err
		}
		if err := tx.Modify(s, "value", chimera.Int(20)); err != nil {
			return err
		}
		return tx.Modify(s, "value", chimera.Int(80))
	}))

	// Transaction 2: unrelated activity only — the heartbeat rule fires
	// at commit (R is non-empty but holds no sensor event).
	must(db.Run(func(tx *chimera.Txn) error {
		_, err := tx.Create("memo", chimera.Values{
			"note": chimera.Str("manual note, not a sensor event")})
		return err
	}))

	// Transaction 3: completely empty — the paper's R ≠ ∅ guard keeps
	// even the pure-negation rule silent. (Nothing happened, so nothing
	// can react.)
	must(db.Run(func(tx *chimera.Txn) error { return nil }))

	fmt.Println("entries:")
	for _, class := range []string{"entry", "gap"} {
		oids, _ := db.Store().Select(class)
		for _, oid := range oids {
			o, _ := db.Store().Get(oid)
			fmt.Printf("  %s\n", o)
		}
	}

	fmt.Println("\ncompiled V(E) filters:")
	for _, name := range db.Support().Rules() {
		st, _ := db.Support().Rule(name)
		match := st.Filter.Set().String()
		if st.Filter.MatchAll {
			match = "match-all (vacuously active expression)"
		}
		fmt.Printf("  %-10s events %-45s -> %s\n", name, st.Def.Event, match)
	}

	ts := db.Support().Stats()
	fmt.Printf("\ntrigger support: %d checks, %d rules examined, %d skipped by V(E), %d ts evaluations, %d triggerings\n",
		ts.Checks, ts.RulesExamined, ts.RulesSkipped, ts.TsEvaluations, ts.Triggerings)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
