// Orders: an order-fulfilment workflow over the class hierarchy of the
// paper's Figure 3 (order and its subclass notFilledOrder), driven by
// composite events through the programmatic API rather than the script
// language.
//
// Rules:
//
//   - escalate (deferred): at commit, any order that was created but
//     whose delivered quantity was never modified afterwards — the
//     negated sequence -(create(order) <= modify(order.delquantity)),
//     per object — is specialized into notFilledOrder;
//
//   - fulfilled (immediate): an order whose delivered quantity reaches
//     the ordered quantity is deleted, exercising the instance sequence
//     create <= modify(delquantity);
//
//   - netAudit (deferred): the legacy holds() net-effect predicate finds
//     orders that net-survive the transaction as creations.
//
// Run with: go run ./examples/orders
package main

import (
	"fmt"
	"log"

	"chimera"
	"chimera/internal/act"
	"chimera/internal/cond"
)

func main() {
	db := chimera.Open()
	must(db.DefineClass("order",
		chimera.Attr("item", chimera.KindString),
		chimera.Attr("quantity", chimera.KindInt),
		chimera.Attr("delquantity", chimera.KindInt)))
	must(db.DefineSubclass("notFilledOrder", "order"))
	must(db.DefineClass("auditlog",
		chimera.Attr("entry", chimera.KindString)))

	createOrder := chimera.Ev(chimera.CreateOf("order"))
	modDel := chimera.Ev(chimera.ModifyOf("order", "delquantity"))

	// fulfilled: create <= modify(delquantity) on the same order, and the
	// delivered quantity covers the ordered one.
	must(chimera.DefineRule(db,
		chimera.RuleDef{
			Name:   "fulfilled",
			Target: "order",
			Event:  chimera.PrecI(createOrder, modDel),
		},
		cond.Formula{Atoms: []cond.Atom{
			cond.Class{Class: "order", Var: "O"},
			cond.Occurred{Event: chimera.PrecI(createOrder, modDel), Var: "O"},
			cond.Compare{
				L:  cond.Attr{Var: "O", Attr: "delquantity"},
				Op: cond.CmpGe,
				R:  cond.Attr{Var: "O", Attr: "quantity"},
			},
		}},
		act.Action{Statements: []act.Statement{
			act.Create{Class: "auditlog", Vals: map[string]cond.Term{
				"entry": cond.Attr{Var: "O", Attr: "item"}}},
			act.Delete{Var: "O"},
		}},
	))

	// escalate: at commit, orders created in this transaction with no
	// delivery touch get specialized into notFilledOrder. The per-object
	// absence is expressed with occurred(create += -=modify(delquantity)).
	pending := chimera.ConjI(createOrder, chimera.NegI(modDel))
	must(chimera.DefineRule(db,
		chimera.RuleDef{
			Name:     "escalate",
			Target:   "order",
			Event:    createOrder,
			Coupling: chimera.Deferred,
		},
		cond.Formula{Atoms: []cond.Atom{
			cond.Class{Class: "order", Var: "O"},
			cond.Occurred{Event: pending, Var: "O"},
		}},
		act.Action{Statements: []act.Statement{
			act.Specialize{Var: "O", To: "notFilledOrder"},
		}},
	))

	// netAudit: the legacy holds() predicate — orders whose net effect is
	// a creation (created and not deleted, regardless of modifications).
	must(chimera.DefineRule(db,
		chimera.RuleDef{
			Name:        "netAudit",
			Target:      "order",
			Event:       createOrder,
			Coupling:    chimera.Deferred,
			Consumption: chimera.Preserving,
			Priority:    10, // after escalate
		},
		cond.Formula{Atoms: []cond.Atom{
			cond.Holds{Event: chimera.CreateOf("order"), Var: "O"},
		}},
		act.Action{Statements: []act.Statement{
			act.Create{Class: "auditlog", Once: true, Vals: map[string]cond.Term{
				"entry": cond.Const{V: chimera.Str("net new orders this txn")}}},
		}},
	))

	// One transaction: three orders; one fully delivered (deleted by
	// fulfilled), one partially delivered, one never touched (escalated).
	must(db.Run(func(tx *chimera.Txn) error {
		full, err := tx.Create("order", chimera.Values{
			"item": chimera.Str("bolts"), "quantity": chimera.Int(10),
			"delquantity": chimera.Int(0)})
		if err != nil {
			return err
		}
		partial, err := tx.Create("order", chimera.Values{
			"item": chimera.Str("nuts"), "quantity": chimera.Int(10),
			"delquantity": chimera.Int(0)})
		if err != nil {
			return err
		}
		if _, err := tx.Create("order", chimera.Values{
			"item": chimera.Str("washers"), "quantity": chimera.Int(4),
			"delquantity": chimera.Int(0)}); err != nil {
			return err
		}
		if err := tx.EndLine(); err != nil {
			return err
		}
		if err := tx.Modify(full, "delquantity", chimera.Int(10)); err != nil {
			return err
		}
		return tx.Modify(partial, "delquantity", chimera.Int(4))
	}))

	fmt.Println("orders after commit:")
	oids, _ := db.Store().Select("order")
	for _, oid := range oids {
		o, _ := db.Store().Get(oid)
		fmt.Printf("  %s [%s]\n", o, o.Class().Name())
	}
	fmt.Println("audit log:")
	logs, _ := db.Store().Select("auditlog")
	for _, oid := range logs {
		o, _ := db.Store().Get(oid)
		fmt.Printf("  %s\n", o)
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
