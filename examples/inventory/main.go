// Inventory: the stock/show scenario of Section 3 of the paper, built on
// composite events.
//
// Two rules exercise the instance-oriented operators:
//
//   - reorder fires on the instance-oriented sequence
//     modify(minquantity) <= modify(quantity) — a stock item whose
//     minimum was raised and whose quantity then changed — and creates a
//     stockOrder for each such item whose quantity fell below the
//     minimum;
//
//   - shelfAlert fires when a shown quantity changes while NO stock item
//     was both created and modified in the same transaction
//     (modify(show.quantity) + -=(create(stock) += modify(stock.quantity))),
//     the paper's flagship instance-negation example.
//
// Run with: go run ./examples/inventory
package main

import (
	"fmt"
	"log"

	"chimera"
)

const schema = `
class stock(name: string, quantity: integer, minquantity: integer)
class show(item: string, quantity: integer)
class stockOrder(item: string, amount: integer)
class alert(reason: string)

define reorder for stock
events modify(minquantity) <= modify(quantity)
condition stock(S),
          occurred(modify(minquantity) <= modify(quantity), S),
          S.quantity < S.minquantity
action create(stockOrder, item = S.name, amount = S.minquantity - S.quantity)
end

define deferred shelfAlert
events modify(show.quantity) + -=(create(stock) += modify(stock.quantity))
condition occurred(modify(show.quantity), X)
action create(alert, reason = "shelf changed without stock intake")
end`

func main() {
	db := chimera.Open()
	chimera.MustLoad(db, schema)

	// Seed the inventory (the seeding transaction also shows that the
	// reorder sequence does not fire on creation alone).
	var bolts, shelf chimera.OID
	must(db.Run(func(tx *chimera.Txn) error {
		var err error
		bolts, err = tx.Create("stock", chimera.Values{
			"name": chimera.Str("bolts"), "quantity": chimera.Int(50),
			"minquantity": chimera.Int(10)})
		if err != nil {
			return err
		}
		shelf, err = tx.Create("show", chimera.Values{
			"item": chimera.Str("bolts"), "quantity": chimera.Int(5)})
		return err
	}))
	report(db, "after seeding")

	// Transaction 1: raise the minimum, then a sale drops the quantity
	// below it — the instance sequence holds on the same object, so the
	// reorder rule fires.
	must(db.Run(func(tx *chimera.Txn) error {
		if err := tx.Modify(bolts, "minquantity", chimera.Int(40)); err != nil {
			return err
		}
		if err := tx.EndLine(); err != nil {
			return err
		}
		return tx.Modify(bolts, "quantity", chimera.Int(25))
	}))
	report(db, "after min-raise followed by sale (reorder should exist)")

	// Transaction 2: only the shelf changes; no stock item was created
	// and modified, so the deferred shelfAlert fires at commit.
	must(db.Run(func(tx *chimera.Txn) error {
		return tx.Modify(shelf, "quantity", chimera.Int(2))
	}))
	report(db, "after lone shelf change (alert should exist)")

	// Transaction 3: the shelf changes but a stock item is created AND
	// its quantity modified in the same transaction — the instance
	// negation suppresses the alert.
	//
	// Order matters under the formal ∃t' triggering semantics: the rule
	// triggers if its expression is active at ANY instant since the last
	// consideration, so the intake must precede the shelf change — were
	// the shelf modified first, the probe at that instant would see no
	// intake yet and the rule would (correctly, per Section 4.4) fire.
	must(db.Run(func(tx *chimera.Txn) error {
		oid, err := tx.Create("stock", chimera.Values{
			"name": chimera.Str("washers"), "quantity": chimera.Int(100),
			"minquantity": chimera.Int(5)})
		if err != nil {
			return err
		}
		if err := tx.Modify(oid, "quantity", chimera.Int(90)); err != nil {
			return err
		}
		return tx.Modify(shelf, "quantity", chimera.Int(8))
	}))
	report(db, "after stock intake followed by shelf change (no new alert)")
}

func report(db *chimera.DB, label string) {
	fmt.Println("--", label)
	for _, class := range []string{"stockOrder", "alert"} {
		oids, err := db.Store().Select(class)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("   %-10s: %d", class, len(oids))
		for _, oid := range oids {
			if o, ok := db.Store().Get(oid); ok {
				fmt.Printf("  %s", o)
			}
		}
		fmt.Println()
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
