// Fraud: card-fraud pattern detection over a stream session — the
// continuous-ingestion mode of DESIGN.md §15 driving the paper's
// composite-event rules.
//
// A payment switch feeds swipe observations and decline signals into
// one chimera.OpenStream session; micro-batches sweep the rule set once
// per batch instead of once per swipe. Three patterns:
//
//   - overlimit (immediate): a spend observation on a card whose
//     running total exceeds its limit — straight V(E)-filtered
//     triggering, fires mid-stream, not at commit;
//
//   - probe (consuming precedence): external(declined) < modify(spent)
//     — a declined authorization followed by a successful spend in the
//     same window, the classic "probe a stolen card with a small
//     charge" shape. Consuming, so each probe pattern alerts once;
//
//   - ringup (deferred + instance conjunction): a card created AND
//     charged inside the streamed session — fresh-account abuse —
//     checked once at the session's commit.
//
// Run with: go run ./examples/fraud
package main

import (
	"fmt"
	"log"

	"chimera"
)

const program = `
class card(holder: string, spent: integer, limit: integer)
class alert(kind: string, holder: string)

define immediate overlimit for card
events modify(spent)
condition card(C), occurred(modify(spent), C), C.spent > C.limit
action create(alert, kind = "over-limit", holder = C.holder)
end

define consuming probe priority 1
events external(declined) < modify(card.spent)
condition card(C), occurred(modify(card.spent), C)
action create once(alert, kind = "probe-then-spend", holder = C.holder)
end

define deferred ringup for card priority 2
events create += modify(spent)
condition card(C), occurred(create += modify(spent), C)
action create(alert, kind = "fresh-card-abuse", holder = C.holder)
end`

func main() {
	db := chimera.Open()
	chimera.MustLoad(db, program)

	// The issuer's book: one card already over its limit, one fresh.
	var visa, corp chimera.OID
	if err := db.Run(func(tx *chimera.Txn) error {
		var err error
		if visa, err = tx.Create("card", chimera.Values{
			"holder": chimera.Str("m.bouvier"), "spent": chimera.Int(120),
			"limit": chimera.Int(100)}); err != nil {
			return err
		}
		corp, err = tx.Create("card", chimera.Values{
			"holder": chimera.Str("acme-corp"), "spent": chimera.Int(10),
			"limit": chimera.Int(5000)})
		return err
	}); err != nil {
		log.Fatal(err)
	}

	// One streaming session carries the whole trading window. Batches
	// flush at 64 swipes or every clock tick, whichever comes first.
	s, err := chimera.OpenStream(db, chimera.StreamOptions{MaxBatch: 64})
	if err != nil {
		log.Fatal(err)
	}

	swipe := func(oid chimera.OID) {
		if err := s.Emit(chimera.ModifyOf("card", "spent"), oid); err != nil {
			log.Fatal(err)
		}
	}

	// The switch's morning: routine traffic on the corporate card, one
	// swipe on the over-limit card, then a decline followed by a spend —
	// the probe pattern.
	for i := 0; i < 200; i++ {
		swipe(corp)
	}
	swipe(visa)
	if err := s.Raise("declined"); err != nil {
		log.Fatal(err)
	}
	swipe(visa)
	if err := s.Flush(); err != nil {
		log.Fatal(err)
	}

	// A card created inside the session and charged immediately: the
	// instance conjunction for the deferred ringup rule.
	if err := s.Emit(chimera.CreateOf("card"), corp); err != nil {
		log.Fatal(err)
	}
	swipe(corp)

	if err := s.Close(); err != nil {
		log.Fatal(err)
	}

	st := s.Stats()
	fmt.Printf("ingested %d events in %d batches (%d enqueued, %d dropped)\n",
		st.Events, st.Batches, st.Enqueued, st.Dropped)

	alerts, _ := db.Store().Select("alert")
	fmt.Printf("%d alert(s):\n", len(alerts))
	for _, oid := range alerts {
		if o, ok := db.Store().Get(oid); ok {
			fmt.Println(" ", o)
		}
	}
}
