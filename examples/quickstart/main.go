// Quickstart: the paper's Section 2 example, verbatim.
//
// A rule targeted to the stock class reacts to creations and clamps the
// quantity of any new stock item that exceeds its maximum:
//
//	define immediate checkStockQty for stock
//	events create
//	condition stock(S), occurred(create, S), S.quantity > S.maxquantity
//	action modify(stock.quantity, S, S.maxquantity)
//	end
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"chimera"
)

func main() {
	db := chimera.Open()

	chimera.MustLoad(db, `
class stock(name: string, quantity: integer, maxquantity: integer)

define immediate checkStockQty for stock
events create
condition stock(S), occurred(create, S), S.quantity > S.maxquantity
action modify(stock.quantity, S, S.maxquantity)
end`)

	var bolts, nuts chimera.OID
	err := db.Run(func(tx *chimera.Txn) error {
		var err error
		// The rule is executed set-orientedly: both creations below are
		// processed together by a single consideration at the end of the
		// transaction line.
		bolts, err = tx.Create("stock", chimera.Values{
			"name": chimera.Str("bolts"), "quantity": chimera.Int(99),
			"maxquantity": chimera.Int(40)})
		if err != nil {
			return err
		}
		nuts, err = tx.Create("stock", chimera.Values{
			"name": chimera.Str("nuts"), "quantity": chimera.Int(10),
			"maxquantity": chimera.Int(40)})
		return err
	})
	if err != nil {
		log.Fatal(err)
	}

	for _, oid := range []chimera.OID{bolts, nuts} {
		o, _ := db.Store().Get(oid)
		fmt.Println(o)
	}
	st := db.Stats()
	fmt.Printf("rule executions: %d (one set-oriented execution for both objects)\n",
		st.RuleExecutions)
}
