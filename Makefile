GO ?= go

.PHONY: build test race vet bench verify

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The -race run covers the concurrent Trigger Support stress test
# (TestSupportConcurrentAccess) and the sharded/incremental differential
# suites; it is part of the tier-1 verification.
race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Full measured-experiment sweep (B1..B8); BENCH_trigger.json holds the
# machine-readable B8 results.
bench:
	$(GO) run ./cmd/chimera-bench
	$(GO) run ./cmd/chimera-bench -json BENCH_trigger.json >/dev/null

verify: build test race vet
