GO ?= go

.PHONY: build test race vet bench verify

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The -race run covers the concurrent Trigger Support stress test
# (TestSupportConcurrentAccess) and the sharded/incremental differential
# suites; it is part of the tier-1 verification.
race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Full measured-experiment sweep (B1..B9); BENCH_trigger.json holds the
# machine-readable B8 results, BENCH_eb.json the B9 Event Base soak.
bench:
	$(GO) run ./cmd/chimera-bench
	$(GO) run ./cmd/chimera-bench -exp B8 -json BENCH_trigger.json >/dev/null
	$(GO) run ./cmd/chimera-bench -exp B9 -json BENCH_eb.json >/dev/null

verify: build test race vet
