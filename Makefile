GO ?= go

.PHONY: build test race race-stress crash-smoke stream-smoke torture vet bench bench-smoke profile cover fuzz verify verify-full

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The -race run covers the concurrent Trigger Support stress test
# (TestSupportConcurrentAccess), the sharded/incremental differential
# suites, and the internal/metrics linearizability tests; it is part of
# the tier-1 verification.
race:
	$(GO) test -race ./...

# Concurrency stress under the race detector with forced parallelism:
# the transaction-line stress tests (disjoint and contended writers at
# the store layer, parallel triggering and the shared counter at the
# engine layer), the snapshot readers-vs-writers mix (lock-free
# BeginRead against committing lines, including the zero-alloc
# steady-state assertion), and the multi-session durability/group-commit
# suite, with GOMAXPROCS pinned to 4 so goroutines genuinely interleave
# even on small CI runners.
race-stress:
	GOMAXPROCS=4 $(GO) test -race -count=2 \
		-run 'TestLine|TestMultiSession|TestSupportConcurrentAccess|TestReadTxn' \
		./internal/object/ ./internal/engine/ ./internal/rules/

# Crash/recovery smoke under the race detector: the kill-and-recover
# differential suite (random crash points, bit-identical replay), WAL
# truncation/corruption recovery, checkpoint bounds, and the FileStore
# fault-injection tests (failing writer, failing fsync, torn tails,
# flipped CRC frames, leftover temp checkpoint).
crash-smoke:
	$(GO) test -race -count=1 \
		-run 'TestKillRecover|TestRecoverContinuation|TestTruncatedWAL|TestCorruptWAL|TestStaleWAL|TestOpenNeedsRecovery|TestWALFailure|TestPerCommitSyncFailure|TestCloseSemantics|TestCheckpointBoundsWAL|TestDDLReplay|TestFileStore' \
		./internal/engine/ ./internal/storage/

# Streaming-mode suite under the race detector with forced parallelism:
# the stream-vs-replay differential (bit-identical store, marks, clock
# and WAL bytes), close/commit semantics, budget-kill recovery with
# pipeline continuation, drop accounting, retention flatness under a
# watermark-pinning rule, clock-driven idle sweeps, and the
# multi-producer soak (see DESIGN.md §15).
stream-smoke:
	GOMAXPROCS=4 $(GO) test -race -count=1 ./internal/stream/

# Torture matrix under the race detector: adversarial rule sets against
# the resource-governance machinery (gas/deadline kills, Event Base
# bounds, parser limits, crash-during-budget-kill recovery, killed
# sessions vs concurrent peers), plus a short adversarial fuzz pass.
# Deterministic and time-capped; part of CI.
torture:
	$(GO) test -race -count=1 -timeout 5m -run 'TestTorture' ./internal/torture/
	$(GO) test ./internal/torture/ -run '^$$' -fuzz FuzzAdversarialRules -fuzztime 15s

vet:
	$(GO) vet ./...

# Full measured-experiment sweep (B1..B16); BENCH_trigger.json holds the
# machine-readable B8 results, BENCH_eb.json the B9 Event Base soak,
# BENCH_obs.json the B10 observability-overhead run, BENCH_cse.json
# the B11 shared-trigger-plan sweep, BENCH_mt.json the B12
# multi-session sweep, BENCH_col.json the B13 columnar-vs-row layout
# sweep, BENCH_wal.json the B14 WAL ingest-overhead and
# crash-recovery run, BENCH_stream.json the B15 streaming
# throughput and flat-memory soak, and BENCH_ro.json the B16
# snapshot-read scaling and group-commit sync-sharing run.
bench:
	$(GO) run ./cmd/chimera-bench
	$(GO) run ./cmd/chimera-bench -exp B8 -json BENCH_trigger.json >/dev/null
	$(GO) run ./cmd/chimera-bench -exp B9 -json BENCH_eb.json >/dev/null
	$(GO) run ./cmd/chimera-bench -metrics >/dev/null
	$(GO) run ./cmd/chimera-bench -exp B11 -json BENCH_cse.json >/dev/null
	$(GO) run ./cmd/chimera-bench -exp B12 -json BENCH_mt.json >/dev/null
	$(GO) run ./cmd/chimera-bench -exp B13 -json BENCH_col.json >/dev/null
	$(GO) run ./cmd/chimera-bench -exp B14 -json BENCH_wal.json >/dev/null
	$(GO) run ./cmd/chimera-bench -exp B15 -json BENCH_stream.json >/dev/null
	$(GO) run ./cmd/chimera-bench -exp B16 -json BENCH_ro.json >/dev/null

# CI-sized B11..B16 runs: the acceptance cells (B11: 50 rules,
# overlap 4; B12: 1 and 8 lines, both workloads; B13: 1000 rules;
# B14: group-commit ingest configs and the smallest recovery image;
# B15: memory and memstore/off throughput plus a short soak;
# B16: 1 and 8 snapshot readers with 0 and 4 writers plus the
# group-commit sharing cells), each held against its committed
# baseline. chimera-benchcmp warns (exit 0) on >10% regressions —
# CI timing is too noisy to gate the build on, but the warning
# shows up in the log.
bench-smoke:
	$(GO) run ./cmd/chimera-bench -exp B11 -smoke -json BENCH_cse_smoke.json
	$(GO) run ./cmd/chimera-benchcmp BENCH_cse.json BENCH_cse_smoke.json
	$(GO) run ./cmd/chimera-bench -exp B12 -smoke -json BENCH_mt_smoke.json
	$(GO) run ./cmd/chimera-benchcmp -exp B12 BENCH_mt.json BENCH_mt_smoke.json
	$(GO) run ./cmd/chimera-bench -exp B13 -smoke -json BENCH_col_smoke.json
	$(GO) run ./cmd/chimera-benchcmp -exp B13 BENCH_col.json BENCH_col_smoke.json
	$(GO) run ./cmd/chimera-bench -exp B14 -smoke -json BENCH_wal_smoke.json
	$(GO) run ./cmd/chimera-benchcmp -exp B14 BENCH_wal.json BENCH_wal_smoke.json
	$(GO) run ./cmd/chimera-bench -exp B15 -smoke -json BENCH_stream_smoke.json
	$(GO) run ./cmd/chimera-benchcmp -exp B15 BENCH_stream.json BENCH_stream_smoke.json
	$(GO) run ./cmd/chimera-bench -exp B16 -smoke -json BENCH_ro_smoke.json
	$(GO) run ./cmd/chimera-benchcmp -exp B16 BENCH_ro.json BENCH_ro_smoke.json

# CPU + heap profiles of one experiment (default: the B13 hot-loop
# sweep). Inspect with `go tool pprof cpu.pprof` / `mem.pprof`.
PROFILE_EXP ?= B13
profile:
	$(GO) run ./cmd/chimera-bench -exp $(PROFILE_EXP) -smoke \
		-json /dev/null -cpuprofile cpu.pprof -memprofile mem.pprof
	@echo "wrote cpu.pprof and mem.pprof (exp $(PROFILE_EXP))"

# Coverage gate: total statement coverage must not fall below the
# recorded baseline (76.6% when the gate was introduced; the floor
# leaves ~1.5 points of slack for platform-dependent branches).
COVER_BASELINE ?= 75.0
cover:
	$(GO) test -count=1 -coverprofile=coverage.out ./...
	@total=$$($(GO) tool cover -func=coverage.out | tail -1 | grep -o '[0-9.]*%' | tr -d '%'); \
	awk -v t=$$total -v b=$(COVER_BASELINE) 'BEGIN { \
	  if (t+0 < b+0) { printf "FAIL: coverage %.1f%% below baseline %.1f%%\n", t, b; exit 1 } \
	  printf "coverage %.1f%% (baseline %.1f%%)\n", t, b }'

# 20-second fuzz smoke: random command scripts through a fully
# instrumented engine, asserting no panic and balanced lifecycle spans.
fuzz:
	$(GO) test ./internal/engine/ -run '^$$' -fuzz FuzzEngineBlock -fuzztime 20s

verify: build test race vet

verify-full: verify cover fuzz
