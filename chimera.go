// Package chimera is a from-scratch reproduction of "Composite Events in
// Chimera" (R. Meo, G. Psaila, S. Ceri — EDBT 1996): an active
// object-oriented database whose ECA rules are triggered by composite
// event expressions built from a minimal, orthogonal operator set —
// conjunction, disjunction, negation and precedence, each in a
// set-oriented and an instance-oriented (same-object) variant — with the
// paper's integer-valued ts semantics, the occurred/at/holds event
// formulas, immediate/deferred coupling, consuming/preserving event
// consumption, priorities, and the V(E) static optimization of the
// Trigger Support.
//
// Quick start:
//
//	db := chimera.Open()
//	db.DefineClass("stock",
//		chimera.Attr("name", chimera.KindString),
//		chimera.Attr("quantity", chimera.KindInt),
//		chimera.Attr("maxquantity", chimera.KindInt))
//	chimera.MustLoad(db, `
//		define immediate checkStockQty for stock
//		events create
//		condition stock(S), occurred(create, S), S.quantity > S.maxquantity
//		action modify(stock.quantity, S, S.maxquantity)
//		end`)
//	db.Run(func(tx *chimera.Txn) error {
//		_, err := tx.Create("stock", chimera.Values{
//			"name": chimera.Str("bolts"), "quantity": chimera.Int(99),
//			"maxquantity": chimera.Int(40)})
//		return err
//	})
//
// The event-expression syntax follows the paper's Figure 1:
//
//	create(stock) , modify(stock.quantity)        set disjunction
//	create(stock) + modify(stock.quantity)        set conjunction
//	create(stock) < modify(stock.quantity)        set precedence
//	-create(stock)                                set negation
//	,=  +=  <=  -=                                instance-oriented variants
package chimera

import (
	"fmt"
	"time"

	"chimera/internal/act"
	"chimera/internal/analysis"
	"chimera/internal/calculus"
	"chimera/internal/clock"
	"chimera/internal/cond"
	"chimera/internal/engine"
	"chimera/internal/event"
	"chimera/internal/lang"
	"chimera/internal/metrics"
	"chimera/internal/rules"
	"chimera/internal/schema"
	"chimera/internal/storage"
	"chimera/internal/stream"
	"chimera/internal/types"
)

// Core engine types.
type (
	// DB is a Chimera database: schema, object store, rules and the
	// transaction machinery.
	DB = engine.DB
	// Txn is an open transaction (a sequence of transaction lines).
	Txn = engine.Txn
	// ReadTxn is a lock-free read-only transaction over the latest
	// published commit snapshot (DB.BeginRead). It never blocks writers,
	// never triggers rules, and write operations on it return
	// ErrReadOnly.
	ReadTxn = engine.ReadTxn
	// Options configures a database.
	Options = engine.Options
	// Body is a rule's condition/action pair.
	Body = engine.Body
	// Stats aggregates engine counters.
	Stats = engine.Stats
	// Limits reports the configured resource bounds and the counters of
	// transactions that hit them.
	Limits = engine.Limits
)

// Sentinel errors of the transaction machinery.
var (
	// ErrTxnOpen is returned by DB.Begin when no further transaction
	// line can be admitted (one open transaction in single-session mode,
	// Options.MaxSessions lines in multi-session mode).
	ErrTxnOpen = engine.ErrTxnOpen
	// ErrConflict is returned by a transaction-line operation that lost
	// a latch conflict with a concurrent line; roll back and retry.
	ErrConflict = engine.ErrConflict
	// ErrGasExhausted is returned (wrapped) when a transaction exceeds
	// Options.GasLimit evaluation steps; roll back the transaction.
	ErrGasExhausted = engine.ErrGasExhausted
	// ErrDeadlineExceeded is returned (wrapped) when a transaction runs
	// past Options.TimeBudget; roll back the transaction.
	ErrDeadlineExceeded = engine.ErrDeadlineExceeded
	// ErrEventLimit is returned (wrapped) by an event-logging operation
	// refused by Options.MaxEvents / Options.MaxSegments.
	ErrEventLimit = engine.ErrEventLimit
	// ErrRuleLimit is returned (wrapped) when a rule cascade exceeds
	// Options.MaxRuleExecutions.
	ErrRuleLimit = engine.ErrRuleLimit
	// ErrReadOnly is returned by write-shaped operations on a ReadTxn.
	ErrReadOnly = engine.ErrReadOnly
)

// Rule machinery.
type (
	// RuleDef is a rule's triggering definition (event expression,
	// coupling, consumption, priority, target).
	RuleDef = rules.Def
	// Coupling is the EC coupling mode.
	Coupling = rules.Coupling
	// Consumption is the event consumption mode.
	Consumption = rules.Consumption
)

// Coupling and consumption modes.
const (
	Immediate  = rules.Immediate
	Deferred   = rules.Deferred
	Consuming  = rules.Consuming
	Preserving = rules.Preserving
)

// Event calculus.
type (
	// Expr is a composite event expression.
	Expr = calculus.Expr
	// EventType is a primitive event type (operation + class [+ attr]).
	EventType = event.Type
	// TS is the integer ts value of the calculus (positive = active).
	TS = calculus.TS
	// Time is a logical time stamp.
	Time = clock.Time
)

// Values.
type (
	// Value is a dynamically typed attribute value.
	Value = types.Value
	// Values maps attribute names to values for creation.
	Values = map[string]types.Value
	// OID is an object identity.
	OID = types.OID
	// Kind is a value kind.
	Kind = types.Kind
)

// Value kinds.
const (
	KindInt    = types.KindInt
	KindFloat  = types.KindFloat
	KindString = types.KindString
	KindBool   = types.KindBool
	KindTime   = types.KindTime
	KindOID    = types.KindOID
)

// Value constructors.
var (
	// Int builds an integer value.
	Int = types.Int
	// Float builds a float value.
	Float = types.Float
	// Str builds a string value.
	Str = types.String_
	// Bool builds a boolean value.
	Bool = types.Bool
	// Ref builds an object reference.
	Ref = types.Ref
)

// Expression constructors (the programmatic alternative to ParseExpr).
var (
	// Ev wraps a primitive event type into an expression.
	Ev = calculus.P
	// Conj is set conjunction (+), Disj set disjunction (,), Prec set
	// precedence (<), Neg set negation (-).
	Conj = calculus.Conj
	Disj = calculus.Disj
	Prec = calculus.Prec
	Neg  = calculus.Neg
	// ConjI, DisjI, PrecI and NegI are the instance-oriented variants
	// (+=, ,=, <=, -=).
	ConjI = calculus.ConjI
	DisjI = calculus.DisjI
	PrecI = calculus.PrecI
	NegI  = calculus.NegI
	// CreateOf, DeleteOf and ModifyOf build primitive event types.
	CreateOf = event.Create
	DeleteOf = event.Delete
	ModifyOf = event.Modify
)

// Observability. Set Options.Metrics to a fresh registry to instrument
// a database; DB.Snapshot reads everything back, and a Tracer observes
// the rule-processing lifecycle as structured spans. Both are proven
// inert: enabled vs disabled runs are differentially tested to produce
// identical triggerings and final states (DESIGN.md §9).
type (
	// MetricsRegistry is a named collection of atomic instruments.
	MetricsRegistry = metrics.Registry
	// MetricsSnapshot is a point-in-time copy of every instrument.
	MetricsSnapshot = metrics.Snapshot
	// Tracer observes the rule-processing loop as lifecycle spans.
	Tracer = engine.Tracer
	// NopTracer is an embeddable all-no-op Tracer.
	NopTracer = engine.NopTracer
	// WriterTracer renders trace spans as text lines.
	WriterTracer = engine.WriterTracer
)

// NewMetricsRegistry returns an empty metrics registry for
// Options.Metrics.
func NewMetricsRegistry() *MetricsRegistry { return metrics.NewRegistry() }

// SchemaAttribute declares one typed attribute of a class.
type SchemaAttribute = schema.Attribute

// Attr declares a class attribute.
func Attr(name string, kind Kind) SchemaAttribute {
	return SchemaAttribute{Name: name, Kind: kind}
}

// DefaultOptions is the paper's default configuration (V(E)-filtered
// Trigger Support, formal ∃t' triggering, sharded determination,
// low-watermark compaction of the Event Base).
func DefaultOptions() Options { return engine.DefaultOptions() }

// Open creates an empty database with the paper's default configuration
// (V(E)-filtered Trigger Support, formal ∃t' triggering).
func Open() *DB { return engine.New(engine.DefaultOptions()) }

// OpenWith creates a database with explicit options.
func OpenWith(opts Options) *DB { return engine.New(opts) }

// ParseExpr parses an event expression in the Figure 1 syntax. target,
// when non-empty, resolves bare operation names ("create") against that
// class.
func ParseExpr(src, target string) (Expr, error) { return lang.ParseExpr(src, target) }

// MustParseExpr is ParseExpr panicking on error, for expression literals
// in examples and tests.
func MustParseExpr(src string) Expr {
	e, err := lang.ParseExpr(src, "")
	if err != nil {
		panic(err)
	}
	return e
}

// Load parses a script of class and rule definitions and installs it
// into the database.
func Load(db *DB, src string) error {
	prog, err := lang.ParseProgram(src)
	if err != nil {
		return err
	}
	for _, c := range prog.Classes {
		if c.Extends != "" {
			if err := db.DefineSubclass(c.Name, c.Extends, attrDefs(c)...); err != nil {
				return err
			}
			continue
		}
		if err := db.DefineClass(c.Name, attrDefs(c)...); err != nil {
			return err
		}
	}
	for _, r := range prog.Rules {
		if err := db.DefineRule(r.Def, engine.Body{Condition: r.Condition, Action: r.Action}); err != nil {
			return err
		}
	}
	return nil
}

func attrDefs(c lang.ClassDef) []schema.Attribute {
	out := make([]schema.Attribute, len(c.Attrs))
	for i, a := range c.Attrs {
		out[i] = schema.Attribute{Name: a.Name, Kind: a.Kind}
	}
	return out
}

// MustLoad is Load panicking on error.
func MustLoad(db *DB, src string) {
	if err := Load(db, src); err != nil {
		panic(fmt.Sprintf("chimera: %v", err))
	}
}

// DefineRule installs a programmatically built rule.
func DefineRule(db *DB, def RuleDef, condition cond.Formula, action act.Action) error {
	return db.DefineRule(def, engine.Body{Condition: condition, Action: action})
}

// AnalysisReport is the result of the static termination analysis.
type AnalysisReport = analysis.Report

// Analyze builds the triggering graph of the database's rule set and
// reports potential non-termination (a conservative static check; the
// engine additionally enforces a runtime execution limit).
func Analyze(db *DB) AnalysisReport { return analysis.Analyze(db) }

// SharingReport quantifies cross-rule subexpression sharing in the
// interned trigger plan (see DESIGN.md §10).
type SharingReport = analysis.SharingReport

// AnalyzeSharing reports the trigger plan's dedup ratio: expression tree
// nodes across the rule set versus live DAG nodes, plus the most-shared
// subexpressions.
func AnalyzeSharing(db *DB) SharingReport { return analysis.AnalyzeSharing(db) }

// Save writes a snapshot of the database (schema, live objects, rules)
// as JSON to path. Snapshots capture committed state only; the Event
// Base is per-transaction and is not persisted.
func Save(db *DB, path string) error { return storage.SaveFile(db, path) }

// Restore reconstructs a database from a snapshot file written by Save.
func Restore(path string) (*DB, error) {
	return storage.LoadFile(path, engine.DefaultOptions())
}

// RestoreWith is Restore with an explicit configuration for the rebuilt
// database.
func RestoreWith(path string, opts Options) (*DB, error) {
	return storage.LoadFile(path, opts)
}

// Durability. Configure Options.Durability with a SegmentStore and an
// fsync policy, open with OpenDurable, and reopen after a crash (or a
// clean shutdown) with Recover: the checkpoint restores the committed
// base state and the WAL suffix replays logically through the live
// engine paths, landing bit-identical to the pre-crash state
// (DESIGN.md §13).
type (
	// DurabilityOptions selects the backing store, fsync policy, sync
	// interval, checkpoint cadence and recovery parallelism.
	DurabilityOptions = engine.DurabilityOptions
	// FsyncPolicy is the group committer's sync discipline.
	FsyncPolicy = engine.FsyncPolicy
	// SegmentStore persists the WAL, checkpoints and retired columnar
	// segments. MemStore keeps everything in memory (crash simulation,
	// tests); FileStore is the on-disk implementation.
	SegmentStore = engine.SegmentStore
	// MemStore is the in-memory SegmentStore.
	MemStore = storage.MemStore
	// FileStore is the directory-backed SegmentStore.
	FileStore = storage.FileStore
	// RecoveryReport summarizes what Recover replayed.
	RecoveryReport = engine.RecoveryReport
)

// Fsync policies.
const (
	// FsyncInterval (the default) syncs at most once per SyncInterval.
	FsyncInterval = engine.FsyncInterval
	// FsyncPerCommit syncs before Commit returns.
	FsyncPerCommit = engine.FsyncPerCommit
	// FsyncOff never syncs explicitly.
	FsyncOff = engine.FsyncOff
)

// Durability errors.
var (
	// ErrNeedsRecovery is returned by OpenDurable when the store holds
	// durable state from an earlier run; use Recover.
	ErrNeedsRecovery = engine.ErrNeedsRecovery
	// ErrWALFailed wraps the first I/O error the group committer hit;
	// commits fail with it until the database is closed and recovered.
	ErrWALFailed = engine.ErrWALFailed
	// ErrClosed is returned by operations on a closed database.
	ErrClosed = engine.ErrClosed
)

// NewMemStore returns an empty in-memory SegmentStore.
func NewMemStore() *MemStore { return storage.NewMemStore() }

// NewFileStore opens (creating if needed) a directory-backed
// SegmentStore.
func NewFileStore(dir string) (*FileStore, error) { return storage.NewFileStore(dir) }

// OpenDurable creates a database over the configured durable store. A
// store already holding state reports ErrNeedsRecovery.
func OpenDurable(opts Options) (*DB, error) { return engine.Open(opts) }

// Recover rebuilds a database from its store's checkpoint and WAL. The
// returned Txn is non-nil when the log ends inside an open transaction
// — the caller owns its fate (commit or roll back); the report
// summarizes what was replayed.
func Recover(opts Options) (*DB, *Txn, *RecoveryReport, error) { return engine.Recover(opts) }

// Streaming. OpenStream starts a continuous-ingestion session over a
// database: arrivals from any number of producers coalesce into
// micro-batches, each swept as one transaction block (one trigger
// sweep, one WAL record), with explicit backpressure, clock-driven
// flushes and an optional retention window for flat steady-state
// memory (DESIGN.md §15).
type (
	// Stream is a live stream session (see OpenStream).
	Stream = stream.Stream
	// StreamOptions configures a stream session: batch bound, flush
	// interval, queue size, backpressure policy, retention window,
	// per-batch budget and clock source.
	StreamOptions = stream.Options
	// StreamStats is a point-in-time snapshot of a stream session.
	StreamStats = stream.Stats
	// StreamEvent is one arrival (a primitive event type plus the
	// affected object).
	StreamEvent = stream.Event
	// BatchError reports a refused micro-batch with its offending
	// events; the session restarts its line and keeps ingesting.
	BatchError = stream.BatchError
	// BackpressurePolicy selects what producers experience when the
	// arrival queue is full.
	BackpressurePolicy = stream.Policy
	// ClockSource paces stream flushes and the durability fsync ticker;
	// inject a ManualClock for deterministic time-driven behavior.
	ClockSource = clock.Source
	// ManualClock is a test clock advanced explicitly.
	ManualClock = clock.Manual
)

// Backpressure policies.
const (
	// BackpressureBlock makes Emit wait for queue room (lossless).
	BackpressureBlock = stream.Block
	// BackpressureDrop sheds arrivals when the queue is full (counted).
	BackpressureDrop = stream.Drop
)

// ErrStreamClosed is returned by operations on a closed stream session.
var ErrStreamClosed = stream.ErrClosed

// WallClock is the real-time ClockSource (the default).
var WallClock = clock.Wall

// ExternalOf builds the primitive event type of an external signal
// (Txn.Raise / Stream.Raise by name is usually more convenient).
var ExternalOf = event.External

// OpenStream starts a stream session over db. The session owns one
// transaction line until Close, which drains the queue, sweeps the
// remainder and commits.
func OpenStream(db *DB, opts StreamOptions) (*Stream, error) { return stream.Open(db, opts) }

// NewManualClock returns a ManualClock frozen at start.
func NewManualClock(start time.Time) *ManualClock { return clock.NewManual(start) }

// Derived combinators: related-work idioms (Ode/HiPAC/Snoop/Samos/
// REFLEX) expressed in the minimal calculus; see
// internal/calculus/derived.go for each operator's fidelity notes.
var (
	// Sequence chains expressions with set precedence (x1 < x2 < ...).
	Sequence = calculus.Sequence
	// SequenceI is Sequence on one object.
	SequenceI = calculus.SequenceI
	// AnyOf is n-ary set disjunction, AllOf n-ary set conjunction.
	AnyOf = calculus.AnyOf
	AllOf = calculus.ConjAll
	// NoneOf is the absence of every listed event in the window.
	NoneOf = calculus.NoneOf
	// SameObject is n-ary instance conjunction (Samos's "same").
	SameObject = calculus.SameObject
)
