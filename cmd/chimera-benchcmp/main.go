// Command chimera-benchcmp compares two benchmark result files (the
// JSON chimera-bench emits, e.g. a committed baseline against a fresh
// run) cell by cell, benchstat-style. -exp selects the experiment
// schema from a registry: B11 (default) compares shared-plan sweeps
// keyed (rules, overlap, workers); B12 compares multi-session sweeps
// keyed (lines, workload); B13 compares columnar-vs-row layout sweeps
// keyed (rules); B14 compares the durable-WAL ingest and recovery runs
// keyed (section, config); B16 compares snapshot-read scaling and
// group-commit sync sharing keyed (section, readers, writers).
// Only cells present in both files are compared, so a
// smoke run holds itself against just the matching slice of the full
// baseline.
//
// A regression — a lower-is-better metric up, a higher-is-better metric
// down, or lost outcome parity — beyond the threshold prints a WARNING
// line. Warnings do not change the exit status: timing cells are noisy
// on shared CI machines, so the tool warns loudly instead of failing
// the build (pass -strict to turn warnings into exit 1 for local
// gating).
//
// Usage:
//
//	chimera-benchcmp BENCH_cse.json new.json
//	chimera-benchcmp -exp B12 BENCH_mt.json smoke.json
//	chimera-benchcmp -exp B13 BENCH_col.json smoke.json
//	chimera-benchcmp -exp B14 BENCH_wal.json smoke.json
//	chimera-benchcmp -exp B15 BENCH_stream.json smoke.json
//	chimera-benchcmp -exp B16 BENCH_ro.json smoke.json
//	chimera-benchcmp -threshold 0.05 -strict old.json new.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"chimera/internal/bench"
)

// ---------------------------------------------------------------------
// Experiment registry. Each experiment contributes a loader that
// normalizes its result file into keyed cells carrying a fixed list of
// metrics; the comparison loop, regression rules and reporting are
// shared. Adding an experiment is one registry entry — no new compare
// function.

// metricDef describes one compared metric of an experiment's schema.
type metricDef struct {
	name string
	// unit renders a value ("ms", "x", "/s", "KB"); see formatVal.
	unit string
	// higherIsBetter selects the regression direction.
	higherIsBetter bool
}

// cell is one experiment cell in registry-normalized form: a printable
// key, metric values parallel to the experiment's metricDefs, and an
// optional semantic-parity flag (nil when the schema has none).
type cell struct {
	key    string
	vals   []float64
	parity *bool
}

// experiment is one registry entry.
type experiment struct {
	id      string
	about   string
	metrics []metricDef
	load    func(path string) ([]cell, error)
}

func boolPtr(b bool) *bool { return &b }

var experiments = []experiment{
	{
		id:    "B11",
		about: "shared trigger plans, keyed (rules, overlap, workers)",
		metrics: []metricDef{
			{name: "shared_ms", unit: "ms"},
			{name: "eval_reduction", unit: "x", higherIsBetter: true},
		},
		load: func(path string) ([]cell, error) {
			var rs []bench.B11Result
			if err := load(path, &rs); err != nil {
				return nil, err
			}
			cells := make([]cell, len(rs))
			for i, r := range rs {
				cells[i] = cell{
					key:    fmt.Sprintf("rules=%d overlap=%d workers=%d", r.Rules, r.Overlap, r.Workers),
					vals:   []float64{r.SharedMs, r.EvalReduction},
					parity: boolPtr(r.SameOutcomes),
				}
			}
			return cells, nil
		},
	},
	{
		id:    "B12",
		about: "concurrent transaction lines, keyed (lines, workload)",
		metrics: []metricDef{
			{name: "trig/s", unit: "/s", higherIsBetter: true},
			{name: "speedup", unit: "x", higherIsBetter: true},
			{name: "p95 ms", unit: "ms"},
		},
		load: func(path string) ([]cell, error) {
			var rs []bench.B12Result
			if err := load(path, &rs); err != nil {
				return nil, err
			}
			cells := make([]cell, len(rs))
			for i, r := range rs {
				cells[i] = cell{
					key:  fmt.Sprintf("lines=%d workload=%s", r.Lines, r.Workload),
					vals: []float64{r.TrigPerSec, r.Speedup, r.P95LatencyMs},
				}
			}
			return cells, nil
		},
	},
	{
		id:    "B14",
		about: "durable Event Base WAL + recovery, keyed (section, config)",
		metrics: []metricDef{
			{name: "time", unit: "ms"},
			{name: "vs-baseline", unit: "x", higherIsBetter: true},
		},
		load: func(path string) ([]cell, error) {
			var r bench.B14Result
			if err := load(path, &r); err != nil {
				return nil, err
			}
			var cells []cell
			for _, in := range r.Ingest {
				// Normalized to the shared schema: per-txn cost in ms and
				// throughput relative to the in-memory baseline.
				cells = append(cells, cell{
					key:  fmt.Sprintf("ingest config=%s", in.Config),
					vals: []float64{in.UsPerTxn / 1e3, in.RelThroughput},
				})
			}
			for _, rc := range r.Recovery {
				cells = append(cells, cell{
					key:    fmt.Sprintf("recovery txns=%d", rc.Txns),
					vals:   []float64{rc.ParallelMs, rc.Speedup},
					parity: boolPtr(rc.Identical),
				})
			}
			return cells, nil
		},
	},
	{
		id:    "B15",
		about: "streaming ingestion throughput + flat-memory soak, keyed (section, config, batch)",
		metrics: []metricDef{
			{name: "events/s", unit: "/s", higherIsBetter: true},
			{name: "speedup", unit: "x", higherIsBetter: true},
		},
		load: func(path string) ([]cell, error) {
			var r bench.B15Result
			if err := load(path, &r); err != nil {
				return nil, err
			}
			var cells []cell
			for _, c := range r.Throughput {
				batch := fmt.Sprint(c.Batch)
				if c.Batch == 0 {
					batch = "per-txn"
				}
				cells = append(cells, cell{
					key:  fmt.Sprintf("throughput config=%s batch=%s", c.Config, batch),
					vals: []float64{c.EventsPerSec, c.Speedup},
				})
			}
			// The soak cell keys on the window geometry, not the event
			// count, so smoke and full soaks still compare.
			cells = append(cells, cell{
				key: fmt.Sprintf("soak window=%d segsize=%d", r.Soak.Window, r.Soak.SegmentSize),
				// Both schema slots are higher-is-better, so the soak
				// reports segment headroom (bound minus peak) twice — a
				// shrinking window reads as the regression it is.
				vals: []float64{
					float64(r.Soak.SegmentBound - r.Soak.MaxLiveSegments),
					float64(r.Soak.SegmentBound - r.Soak.MaxLiveSegments),
				},
				parity: boolPtr(r.Soak.Flat),
			})
			return cells, nil
		},
	},
	{
		id:    "B16",
		about: "snapshot reads + group commit, keyed (section, readers, writers)",
		metrics: []metricDef{
			{name: "rate", unit: "/s", higherIsBetter: true},
			{name: "gain", unit: "x", higherIsBetter: true},
		},
		load: func(path string) ([]cell, error) {
			var r bench.B16Result
			if err := load(path, &r); err != nil {
				return nil, err
			}
			var cells []cell
			for _, c := range r.Read {
				cells = append(cells, cell{
					key:  fmt.Sprintf("read readers=%d writers=%d", c.Readers, c.Writers),
					vals: []float64{c.ReadsPerSec, c.Speedup},
				})
			}
			for _, c := range r.GroupCommit {
				// Normalized to the shared schema: commit throughput and
				// commits-per-fsync (the inverse of the fsyncs/commit
				// acceptance ratio — higher means more sync sharing).
				cells = append(cells, cell{
					key:    fmt.Sprintf("group writers=%d", c.Writers),
					vals:   []float64{c.ThroughputTPS, c.ShareFactor},
					parity: boolPtr(c.Fsyncs > 0),
				})
			}
			return cells, nil
		},
	},
	{
		id:    "B13",
		about: "columnar Event Base vs row store, keyed (rules)",
		metrics: []metricDef{
			{name: "columnar_ms", unit: "ms"},
			{name: "speedup", unit: "x", higherIsBetter: true},
			{name: "col_alloc_kb", unit: "KB"},
		},
		load: func(path string) ([]cell, error) {
			var rs []bench.B13Result
			if err := load(path, &rs); err != nil {
				return nil, err
			}
			cells := make([]cell, len(rs))
			for i, r := range rs {
				cells[i] = cell{
					key:    fmt.Sprintf("rules=%d", r.Rules),
					vals:   []float64{r.ColMs, r.Speedup, float64(r.ColAllocKB)},
					parity: boolPtr(r.SameOutcomes),
				}
			}
			return cells, nil
		},
	},
}

func lookup(id string) (experiment, bool) {
	for _, e := range experiments {
		if strings.EqualFold(e.id, id) {
			return e, true
		}
	}
	return experiment{}, false
}

func registryIDs() string {
	ids := make([]string, len(experiments))
	for i, e := range experiments {
		ids[i] = e.id
	}
	sort.Strings(ids)
	return strings.Join(ids, ", ")
}

func main() {
	expID := flag.String("exp", "B11", "result schema to compare ("+registryIDs()+")")
	threshold := flag.Float64("threshold", 0.10, "relative change that counts as a regression")
	strict := flag.Bool("strict", false, "exit 1 when any regression is found (default: warn only)")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintf(os.Stderr, "usage: chimera-benchcmp [-exp %s] [-threshold 0.10] [-strict] baseline.json new.json\n", registryIDs())
		for _, e := range experiments {
			fmt.Fprintf(os.Stderr, "  %s: %s\n", e.id, e.about)
		}
		os.Exit(2)
	}

	exp, ok := lookup(*expID)
	if !ok {
		fatal(fmt.Errorf("unknown experiment %q (registry: %s)", *expID, registryIDs()))
	}
	warnings, compared, err := compare(exp, flag.Arg(0), flag.Arg(1), *threshold)
	if err != nil {
		fatal(err)
	}
	if compared == 0 {
		fatal(fmt.Errorf("no cells in common between %s and %s", flag.Arg(0), flag.Arg(1)))
	}
	if warnings > 0 {
		fmt.Printf("%d regression warning(s) across %d compared cell(s)\n", warnings, compared)
		if *strict {
			os.Exit(1)
		}
	} else {
		fmt.Printf("no regressions across %d compared cell(s)\n", compared)
	}
}

// compare holds every cell of cur against the same-keyed cell of base
// under the experiment's metric directions.
func compare(exp experiment, basePath, curPath string, threshold float64) (warnings, compared int, err error) {
	base, err := exp.load(basePath)
	if err != nil {
		return 0, 0, err
	}
	cur, err := exp.load(curPath)
	if err != nil {
		return 0, 0, err
	}
	byKey := make(map[string]cell, len(base))
	for _, c := range base {
		byKey[c.key] = c
	}
	for _, n := range cur {
		o, ok := byKey[n.key]
		if !ok {
			continue
		}
		compared++
		fmt.Println(n.key)
		for i, m := range exp.metrics {
			ov, nv := o.vals[i], n.vals[i]
			fmt.Printf("  %-15s %12s -> %12s  (%+.1f%%)\n", m.name, formatVal(ov, m.unit), formatVal(nv, m.unit), delta(ov, nv))
			if regressed(ov, nv, m.higherIsBetter, threshold) {
				warnings++
				worse := delta(ov, nv)
				if m.higherIsBetter {
					worse = -worse
				}
				fmt.Printf("  WARNING: %s regressed %.1f%% (threshold %.0f%%)\n", m.name, worse, 100*threshold)
			}
		}
		if n.parity != nil && !*n.parity {
			warnings++
			fmt.Printf("  WARNING: configurations disagree on triggerings\n")
		}
	}
	return warnings, compared, nil
}

func regressed(old, new float64, higherIsBetter bool, threshold float64) bool {
	if old <= 0 {
		return false
	}
	if higherIsBetter {
		return new < old*(1-threshold)
	}
	return new > old*(1+threshold)
}

func formatVal(v float64, unit string) string {
	switch unit {
	case "x":
		return fmt.Sprintf("%.2fx", v)
	case "/s":
		return fmt.Sprintf("%.0f/s", v)
	case "KB":
		return fmt.Sprintf("%.0fKB", v)
	default:
		return fmt.Sprintf("%.3f%s", v, unit)
	}
}

func load(path string, into any) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if err := json.Unmarshal(data, into); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	return nil
}

func delta(old, new float64) float64 {
	if old == 0 {
		return 0
	}
	return 100 * (new - old) / old
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "chimera-benchcmp: %v\n", err)
	os.Exit(1)
}
