// Command chimera-benchcmp compares two B11 result files (the JSON
// chimera-bench -exp B11 emits, e.g. the committed BENCH_cse.json
// baseline against a fresh run) cell by cell, benchstat-style. Cells
// are keyed (rules, overlap, workers); only cells present in both
// files are compared, so a smoke run holds itself against just the
// matching slice of the full baseline.
//
// A regression — shared_ms up, eval_reduction down, or lost outcome
// parity — beyond the threshold prints a WARNING line. Warnings do not
// change the exit status: timing cells are noisy on shared CI
// machines, so the tool warns loudly instead of failing the build
// (pass -strict to turn warnings into exit 1 for local gating).
//
// Usage:
//
//	chimera-benchcmp BENCH_cse.json new.json
//	chimera-benchcmp -threshold 0.05 -strict old.json new.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"chimera/internal/bench"
)

func main() {
	threshold := flag.Float64("threshold", 0.10, "relative change that counts as a regression")
	strict := flag.Bool("strict", false, "exit 1 when any regression is found (default: warn only)")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: chimera-benchcmp [-threshold 0.10] [-strict] baseline.json new.json")
		os.Exit(2)
	}

	base, err := load(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	cur, err := load(flag.Arg(1))
	if err != nil {
		fatal(err)
	}

	type key struct{ rules, overlap, workers int }
	byCell := make(map[key]bench.B11Result, len(base))
	for _, r := range base {
		byCell[key{r.Rules, r.Overlap, r.Workers}] = r
	}

	warnings, compared := 0, 0
	for _, n := range cur {
		o, ok := byCell[key{n.Rules, n.Overlap, n.Workers}]
		if !ok {
			continue
		}
		compared++
		cell := fmt.Sprintf("rules=%d overlap=%d workers=%d", n.Rules, n.Overlap, n.Workers)
		fmt.Printf("%s\n", cell)
		fmt.Printf("  shared_ms       %10.3f -> %10.3f  (%+.1f%%)\n", o.SharedMs, n.SharedMs, delta(o.SharedMs, n.SharedMs))
		fmt.Printf("  eval_reduction  %9.2fx -> %9.2fx  (%+.1f%%)\n", o.EvalReduction, n.EvalReduction, delta(o.EvalReduction, n.EvalReduction))
		if o.SharedMs > 0 && n.SharedMs > o.SharedMs*(1+*threshold) {
			warnings++
			fmt.Printf("  WARNING: shared_ms regressed %.1f%% (threshold %.0f%%)\n", delta(o.SharedMs, n.SharedMs), 100**threshold)
		}
		if o.EvalReduction > 0 && n.EvalReduction < o.EvalReduction*(1-*threshold) {
			warnings++
			fmt.Printf("  WARNING: eval_reduction regressed %.1f%% (threshold %.0f%%)\n", -delta(o.EvalReduction, n.EvalReduction), 100**threshold)
		}
		if !n.SameOutcomes {
			warnings++
			fmt.Printf("  WARNING: shared plan and baseline disagree on triggerings\n")
		}
	}
	if compared == 0 {
		fatal(fmt.Errorf("no cells in common between %s and %s", flag.Arg(0), flag.Arg(1)))
	}
	if warnings > 0 {
		fmt.Printf("%d regression warning(s) across %d compared cell(s)\n", warnings, compared)
		if *strict {
			os.Exit(1)
		}
	} else {
		fmt.Printf("no regressions across %d compared cell(s)\n", compared)
	}
}

func load(path string) ([]bench.B11Result, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rs []bench.B11Result
	if err := json.Unmarshal(data, &rs); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return rs, nil
}

func delta(old, new float64) float64 {
	if old == 0 {
		return 0
	}
	return 100 * (new - old) / old
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "chimera-benchcmp: %v\n", err)
	os.Exit(1)
}
