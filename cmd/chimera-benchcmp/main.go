// Command chimera-benchcmp compares two benchmark result files (the
// JSON chimera-bench emits, e.g. a committed baseline against a fresh
// run) cell by cell, benchstat-style. -exp selects the experiment
// schema: B11 (default) compares shared-plan sweeps keyed
// (rules, overlap, workers); B12 compares multi-session sweeps keyed
// (lines, workload). Only cells present in both files are compared, so
// a smoke run holds itself against just the matching slice of the full
// baseline.
//
// A regression — B11: shared_ms up, eval_reduction down, or lost
// outcome parity; B12: triggering throughput or speedup down, or p95
// latency up — beyond the threshold prints a WARNING line. Warnings do
// not change the exit status: timing cells are noisy on shared CI
// machines, so the tool warns loudly instead of failing the build
// (pass -strict to turn warnings into exit 1 for local gating).
//
// Usage:
//
//	chimera-benchcmp BENCH_cse.json new.json
//	chimera-benchcmp -exp B12 BENCH_mt.json smoke.json
//	chimera-benchcmp -threshold 0.05 -strict old.json new.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"chimera/internal/bench"
)

func main() {
	exp := flag.String("exp", "B11", "result schema to compare: B11 or B12")
	threshold := flag.Float64("threshold", 0.10, "relative change that counts as a regression")
	strict := flag.Bool("strict", false, "exit 1 when any regression is found (default: warn only)")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: chimera-benchcmp [-exp B11|B12] [-threshold 0.10] [-strict] baseline.json new.json")
		os.Exit(2)
	}

	var warnings, compared int
	var err error
	switch strings.ToUpper(*exp) {
	case "B11":
		warnings, compared, err = compareB11(flag.Arg(0), flag.Arg(1), *threshold)
	case "B12":
		warnings, compared, err = compareB12(flag.Arg(0), flag.Arg(1), *threshold)
	default:
		err = fmt.Errorf("unknown experiment %q (B11 or B12)", *exp)
	}
	if err != nil {
		fatal(err)
	}
	if compared == 0 {
		fatal(fmt.Errorf("no cells in common between %s and %s", flag.Arg(0), flag.Arg(1)))
	}
	if warnings > 0 {
		fmt.Printf("%d regression warning(s) across %d compared cell(s)\n", warnings, compared)
		if *strict {
			os.Exit(1)
		}
	} else {
		fmt.Printf("no regressions across %d compared cell(s)\n", compared)
	}
}

func compareB11(basePath, curPath string, threshold float64) (warnings, compared int, err error) {
	var base, cur []bench.B11Result
	if err := load(basePath, &base); err != nil {
		return 0, 0, err
	}
	if err := load(curPath, &cur); err != nil {
		return 0, 0, err
	}

	type key struct{ rules, overlap, workers int }
	byCell := make(map[key]bench.B11Result, len(base))
	for _, r := range base {
		byCell[key{r.Rules, r.Overlap, r.Workers}] = r
	}

	for _, n := range cur {
		o, ok := byCell[key{n.Rules, n.Overlap, n.Workers}]
		if !ok {
			continue
		}
		compared++
		fmt.Printf("rules=%d overlap=%d workers=%d\n", n.Rules, n.Overlap, n.Workers)
		fmt.Printf("  shared_ms       %10.3f -> %10.3f  (%+.1f%%)\n", o.SharedMs, n.SharedMs, delta(o.SharedMs, n.SharedMs))
		fmt.Printf("  eval_reduction  %9.2fx -> %9.2fx  (%+.1f%%)\n", o.EvalReduction, n.EvalReduction, delta(o.EvalReduction, n.EvalReduction))
		if o.SharedMs > 0 && n.SharedMs > o.SharedMs*(1+threshold) {
			warnings++
			fmt.Printf("  WARNING: shared_ms regressed %.1f%% (threshold %.0f%%)\n", delta(o.SharedMs, n.SharedMs), 100*threshold)
		}
		if o.EvalReduction > 0 && n.EvalReduction < o.EvalReduction*(1-threshold) {
			warnings++
			fmt.Printf("  WARNING: eval_reduction regressed %.1f%% (threshold %.0f%%)\n", -delta(o.EvalReduction, n.EvalReduction), 100*threshold)
		}
		if !n.SameOutcomes {
			warnings++
			fmt.Printf("  WARNING: shared plan and baseline disagree on triggerings\n")
		}
	}
	return warnings, compared, nil
}

func compareB12(basePath, curPath string, threshold float64) (warnings, compared int, err error) {
	var base, cur []bench.B12Result
	if err := load(basePath, &base); err != nil {
		return 0, 0, err
	}
	if err := load(curPath, &cur); err != nil {
		return 0, 0, err
	}

	type key struct {
		lines    int
		workload string
	}
	byCell := make(map[key]bench.B12Result, len(base))
	for _, r := range base {
		byCell[key{r.Lines, r.Workload}] = r
	}

	for _, n := range cur {
		o, ok := byCell[key{n.Lines, n.Workload}]
		if !ok {
			continue
		}
		compared++
		fmt.Printf("lines=%d workload=%s\n", n.Lines, n.Workload)
		fmt.Printf("  trig/s   %10.0f -> %10.0f  (%+.1f%%)\n", o.TrigPerSec, n.TrigPerSec, delta(o.TrigPerSec, n.TrigPerSec))
		fmt.Printf("  speedup  %9.2fx -> %9.2fx  (%+.1f%%)\n", o.Speedup, n.Speedup, delta(o.Speedup, n.Speedup))
		fmt.Printf("  p95 ms   %10.3f -> %10.3f  (%+.1f%%)\n", o.P95LatencyMs, n.P95LatencyMs, delta(o.P95LatencyMs, n.P95LatencyMs))
		if o.TrigPerSec > 0 && n.TrigPerSec < o.TrigPerSec*(1-threshold) {
			warnings++
			fmt.Printf("  WARNING: triggering throughput regressed %.1f%% (threshold %.0f%%)\n", -delta(o.TrigPerSec, n.TrigPerSec), 100*threshold)
		}
		if o.Speedup > 0 && n.Speedup < o.Speedup*(1-threshold) {
			warnings++
			fmt.Printf("  WARNING: speedup over 1 line regressed %.1f%% (threshold %.0f%%)\n", -delta(o.Speedup, n.Speedup), 100*threshold)
		}
		if o.P95LatencyMs > 0 && n.P95LatencyMs > o.P95LatencyMs*(1+threshold) {
			warnings++
			fmt.Printf("  WARNING: p95 latency regressed %.1f%% (threshold %.0f%%)\n", delta(o.P95LatencyMs, n.P95LatencyMs), 100*threshold)
		}
	}
	return warnings, compared, nil
}

func load(path string, into any) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if err := json.Unmarshal(data, into); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	return nil
}

func delta(old, new float64) float64 {
	if old == 0 {
		return 0
	}
	return 100 * (new - old) / old
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "chimera-benchcmp: %v\n", err)
	os.Exit(1)
}
