// Command chimera-spec runs conformance-spec files against the event
// calculus (see internal/spec for the format). The repository's corpus
// lives in internal/spec/testdata; the tool lets users write and run
// their own scenarios:
//
//	chimera-spec internal/spec/testdata/*.spec
//	chimera-spec -v my_scenario.spec
package main

import (
	"flag"
	"fmt"
	"os"

	"chimera/internal/spec"
)

func main() {
	verbose := flag.Bool("v", false, "print every passing file too")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: chimera-spec [-v] <file.spec>...")
		os.Exit(2)
	}
	failed := 0
	for _, path := range flag.Args() {
		sc, err := spec.ParseFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", path, err)
			failed++
			continue
		}
		fails, err := sc.Run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", path, err)
			failed++
			continue
		}
		if len(fails) > 0 {
			failed++
			for _, f := range fails {
				fmt.Fprintf(os.Stderr, "%s:%d: %s\n", path, f.Line, f.Msg)
			}
			continue
		}
		if *verbose {
			fmt.Printf("%s: ok (%d assertions)\n", path, len(sc.Directives))
		}
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "chimera-spec: %d file(s) failed\n", failed)
		os.Exit(1)
	}
}
