// Command chimerash is an interactive shell for the Chimera
// reproduction: it executes transaction lines against a database with
// active rules, exactly the Block Executor loop of the paper's Section 5.
//
// Each input line is one non-interruptible block; after it executes,
// triggered immediate rules are considered and executed. Example
// session:
//
//	> class stock(name: string, quantity: integer, maxquantity: integer)
//	> define checkStockQty for stock
//	>   events create
//	>   condition stock(S), occurred(create, S), S.quantity > S.maxquantity
//	>   action modify(stock.quantity, S, S.maxquantity)
//	> end
//	> begin
//	> create stock(name = "bolts", quantity = 99, maxquantity = 40)
//	> show objects
//	> commit
//
// A script can be piped on stdin or passed with -f.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"chimera"
	"chimera/internal/engine"
	"chimera/internal/shell"
)

func main() {
	file := flag.String("f", "", "script file to execute instead of stdin")
	quiet := flag.Bool("q", false, "suppress the prompt and banners")
	trace := flag.Bool("trace", false, "print rule-processing trace lines")
	flag.Parse()

	in := io.Reader(os.Stdin)
	interactive := !*quiet
	if *file != "" {
		f, err := os.Open(*file)
		if err != nil {
			fmt.Fprintln(os.Stderr, "chimerash:", err)
			os.Exit(1)
		}
		defer f.Close()
		in = f
		interactive = false
	}

	db := chimera.OpenWith(shell.InteractiveOptions())
	if *trace {
		db.SetTracer(engine.WriterTracer{W: os.Stderr})
	}
	sh := shell.New(db, os.Stdout)
	if interactive {
		fmt.Println("chimerash — Composite Events in Chimera (EDBT 1996 reproduction)")
		fmt.Println(`type "help" for commands, "quit" to exit`)
	}
	scanner := bufio.NewScanner(in)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	var block strings.Builder
	for {
		if interactive {
			if block.Len() == 0 {
				fmt.Print("> ")
			} else {
				fmt.Print("... ")
			}
		}
		if !scanner.Scan() {
			break
		}
		line := strings.TrimSpace(scanner.Text())
		if block.Len() == 0 {
			if line == "" || strings.HasPrefix(line, "--") {
				continue
			}
			switch line {
			case "quit", "exit":
				return
			case "help":
				sh.Help()
				continue
			}
		}
		block.WriteString(line)
		block.WriteString("\n")
		if shell.NeedsMore(block.String()) {
			continue
		}
		src := block.String()
		block.Reset()
		if err := sh.Execute(src); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			if !interactive {
				os.Exit(1)
			}
		}
	}
	if sh.InTransaction() {
		fmt.Fprintln(os.Stderr, "warning: open transaction rolled back at exit")
	}
	sh.Close()
}
