// Command chimera-bench runs the measured experiments of EXPERIMENTS.md
// (B1..B16) and prints their tables. Each experiment exercises a
// performance claim Section 5 of the paper makes qualitatively.
//
// Usage:
//
//	chimera-bench                          # run everything
//	chimera-bench -exp B1                  # run one experiment
//	chimera-bench -exp B8 -json out.json   # machine-readable B8 results
//	chimera-bench -exp B9 -json eb.json    # machine-readable B9 soak
//	chimera-bench -metrics                 # B10 overhead run -> BENCH_obs.json
//	chimera-bench -exp B11 -json BENCH_cse.json        # shared-plan sweep
//	chimera-bench -exp B12 -json BENCH_mt.json         # multi-session sweep
//	chimera-bench -exp B13 -json BENCH_col.json        # columnar-vs-row sweep
//	chimera-bench -exp B14 -json BENCH_wal.json        # WAL ingest + recovery
//	chimera-bench -exp B16 -json BENCH_ro.json         # snapshot reads + group commit
//	chimera-bench -exp B11 -smoke -json smoke.json     # reduced CI sweep
//	chimera-bench -exp B9 -cpuprofile cpu.pprof -memprofile mem.pprof
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"chimera/internal/bench"
)

func main() {
	exp := flag.String("exp", "", "experiment id (B1..B16); empty runs all")
	format := flag.String("format", "table", "output format: table or csv")
	jsonOut := flag.String("json", "", "write machine-readable results to this file (-exp B8..B16; defaults to B8)")
	metricsRun := flag.Bool("metrics", false, "run the B10 observability-overhead experiment and write BENCH_obs.json")
	smoke := flag.Bool("smoke", false, "with -exp B11..B16: run the reduced CI-sized sweep instead of the full one")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile at exit to this file")
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintf(os.Stderr, "chimera-bench: %v\n", err)
		os.Exit(1)
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fail(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		// Written after the run (deferred) so the profile reflects what the
		// experiments leave live, not startup state.
		f, err := os.Create(*memProfile)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		defer func() {
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "chimera-bench: %v\n", err)
			}
		}()
	}

	render := func(t bench.Table) string {
		if *format == "csv" {
			return "# " + t.ID + " — " + t.Title + "\n" + t.CSV()
		}
		return t.String()
	}
	if *metricsRun {
		// -metrics is shorthand for -exp B10 -json BENCH_obs.json.
		*exp = "B10"
		if *jsonOut == "" {
			*jsonOut = "BENCH_obs.json"
		}
	}
	if *jsonOut != "" {
		var data []byte
		var table bench.Table
		var err error
		switch strings.ToUpper(*exp) {
		case "", "B8":
			results := bench.B8Results()
			data, err = json.MarshalIndent(results, "", "  ")
			table = bench.B8FromResults(results)
		case "B9":
			results := bench.B9Results()
			data, err = json.MarshalIndent(results, "", "  ")
			table = bench.B9FromResults(results)
		case "B10":
			results := bench.B10Results()
			data, err = json.MarshalIndent(results, "", "  ")
			table = bench.B10FromResults(results)
		case "B11":
			var results []bench.B11Result
			if *smoke {
				results = bench.B11SmokeResults()
			} else {
				results = bench.B11Results()
			}
			data, err = json.MarshalIndent(results, "", "  ")
			table = bench.B11FromResults(results)
		case "B12":
			var results []bench.B12Result
			if *smoke {
				results = bench.B12SmokeResults()
			} else {
				results = bench.B12Results()
			}
			data, err = json.MarshalIndent(results, "", "  ")
			table = bench.B12FromResults(results)
		case "B13":
			var results []bench.B13Result
			if *smoke {
				results = bench.B13SmokeResults()
			} else {
				results = bench.B13Results()
			}
			data, err = json.MarshalIndent(results, "", "  ")
			table = bench.B13FromResults(results)
		case "B14":
			var results bench.B14Result
			if *smoke {
				results = bench.B14SmokeResults()
			} else {
				results = bench.B14Results()
			}
			data, err = json.MarshalIndent(results, "", "  ")
			table = bench.B14FromResults(results)
		case "B15":
			var results bench.B15Result
			if *smoke {
				results = bench.B15SmokeResults()
			} else {
				results = bench.B15Results()
			}
			data, err = json.MarshalIndent(results, "", "  ")
			table = bench.B15FromResults(results)
		case "B16":
			var results bench.B16Result
			if *smoke {
				results = bench.B16SmokeResults()
			} else {
				results = bench.B16Results()
			}
			data, err = json.MarshalIndent(results, "", "  ")
			table = bench.B16FromResults(results)
		default:
			fail(fmt.Errorf("-json supports experiments B8 through B16, not %q", *exp))
		}
		if err != nil {
			fail(err)
		}
		if err := os.WriteFile(*jsonOut, append(data, '\n'), 0o644); err != nil {
			fail(err)
		}
		fmt.Println(render(table))
		return
	}
	if *exp == "" {
		for _, t := range bench.All() {
			fmt.Println(render(t))
		}
		return
	}
	t, ok := bench.ByID(*exp)
	if !ok {
		fail(fmt.Errorf("unknown experiment %q (B1..B16)", *exp))
	}
	fmt.Println(render(t))
}
