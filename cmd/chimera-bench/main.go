// Command chimera-bench runs the measured experiments of EXPERIMENTS.md
// (B1..B6) and prints their tables. Each experiment exercises a
// performance claim Section 5 of the paper makes qualitatively.
//
// Usage:
//
//	chimera-bench              # run everything
//	chimera-bench -exp B1      # run one experiment
package main

import (
	"flag"
	"fmt"
	"os"

	"chimera/internal/bench"
)

func main() {
	exp := flag.String("exp", "", "experiment id (B1..B7); empty runs all")
	format := flag.String("format", "table", "output format: table or csv")
	flag.Parse()

	render := func(t bench.Table) string {
		if *format == "csv" {
			return "# " + t.ID + " — " + t.Title + "\n" + t.CSV()
		}
		return t.String()
	}
	if *exp == "" {
		for _, t := range bench.All() {
			fmt.Println(render(t))
		}
		return
	}
	t, ok := bench.ByID(*exp)
	if !ok {
		fmt.Fprintf(os.Stderr, "chimera-bench: unknown experiment %q (B1..B7)\n", *exp)
		os.Exit(1)
	}
	fmt.Println(render(t))
}
