// Command chimera-bench runs the measured experiments of EXPERIMENTS.md
// (B1..B8) and prints their tables. Each experiment exercises a
// performance claim Section 5 of the paper makes qualitatively.
//
// Usage:
//
//	chimera-bench                          # run everything
//	chimera-bench -exp B1                  # run one experiment
//	chimera-bench -exp B8 -json out.json   # machine-readable B8 results
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"chimera/internal/bench"
)

func main() {
	exp := flag.String("exp", "", "experiment id (B1..B8); empty runs all")
	format := flag.String("format", "table", "output format: table or csv")
	jsonOut := flag.String("json", "", "write machine-readable B8 results to this file (implies -exp B8)")
	flag.Parse()

	render := func(t bench.Table) string {
		if *format == "csv" {
			return "# " + t.ID + " — " + t.Title + "\n" + t.CSV()
		}
		return t.String()
	}
	if *jsonOut != "" {
		results := bench.B8Results()
		data, err := json.MarshalIndent(results, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "chimera-bench: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*jsonOut, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "chimera-bench: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(render(bench.B8FromResults(results)))
		return
	}
	if *exp == "" {
		for _, t := range bench.All() {
			fmt.Println(render(t))
		}
		return
	}
	t, ok := bench.ByID(*exp)
	if !ok {
		fmt.Fprintf(os.Stderr, "chimera-bench: unknown experiment %q (B1..B8)\n", *exp)
		os.Exit(1)
	}
	fmt.Println(render(t))
}
