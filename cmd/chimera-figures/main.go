// Command chimera-figures regenerates every figure of "Composite Events
// in Chimera" (EDBT 1996) and the in-text worked examples from the
// implementation.
//
// Usage:
//
//	chimera-figures            # print every figure
//	chimera-figures -fig 5     # print one figure (1-7, x1, x2, x6)
package main

import (
	"flag"
	"fmt"
	"os"

	"chimera/internal/figures"
)

func main() {
	fig := flag.String("fig", "", "figure id to print (1..7, x1, x2, x6); empty prints all")
	flag.Parse()

	all := figures.All()
	if *fig == "" {
		for _, f := range all {
			fmt.Println(f.Text)
		}
		return
	}
	for _, f := range all {
		if f.ID == *fig {
			fmt.Println(f.Text)
			return
		}
	}
	fmt.Fprintf(os.Stderr, "chimera-figures: unknown figure %q\n", *fig)
	os.Exit(1)
}
