package chimera_test

// Benchmarks for every measured experiment of EXPERIMENTS.md (B1..B6)
// plus micro-benchmarks of the core calculus. The chimera-bench command
// prints the corresponding human-readable tables; these expose the same
// code paths to `go test -bench`.

import (
	"fmt"
	"math/rand"
	"testing"

	"chimera"
	"chimera/internal/bench"
	"chimera/internal/calculus"
	"chimera/internal/clock"
	"chimera/internal/event"
	"chimera/internal/figures"
	"chimera/internal/lang"
	"chimera/internal/rules"
	"chimera/internal/workload"
)

// B1 — Trigger Support: naive recomputation vs the V(E) static
// optimization, on a workload where 5% of the vocabulary is hot.
func BenchmarkTriggerSupport(b *testing.B) {
	for _, mode := range []struct {
		name string
		opts rules.Options
	}{
		{"naive", rules.Options{}},
		{"vE-filter", rules.Options{UseFilter: true}},
	} {
		for _, nRules := range []int{10, 100, 1000} {
			b.Run(fmt.Sprintf("%s/rules=%d", mode.name, nRules), func(b *testing.B) {
				vocab := workload.Vocabulary(32)
				defs := workload.Rules(rand.New(rand.NewSource(1)), workload.RuleSetOptions{
					Rules: nRules, Vocab: vocab, TypesPerRule: 3, Depth: 2,
					Negation: true, Precedence: true,
				})
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					c := clock.New()
					base := event.NewBase()
					s := rules.NewSupport(base, mode.opts)
					s.BeginTransaction(c.Now())
					for _, d := range defs {
						if err := s.Define(d); err != nil {
							b.Fatal(err)
						}
					}
					stream := workload.Stream(rand.New(rand.NewSource(2)), c, base, workload.StreamOptions{
						Blocks: 20, EventsPerBlock: 8, Objects: 32, Vocab: vocab, HotFraction: 0.05,
					})
					workload.Drive(s, c, stream, true)
				}
			})
		}
	}
}

// B2 — ts evaluation cost vs expression depth.
func BenchmarkTsEvalDepth(b *testing.B) {
	for depth := 1; depth <= 8; depth++ {
		env, e, now := bench.B2Eval(depth)
		b.Run(fmt.Sprintf("depth=%d/nodes=%d", depth, calculus.Size(e)), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				env.TS(e, now)
			}
		})
	}
}

// B3 — instance-oriented lift cost vs the number of distinct objects,
// with and without the sign-preserving domain restriction.
func BenchmarkInstanceEval(b *testing.B) {
	for _, objects := range []int{4, 16, 64, 256} {
		env, e, now := bench.B3Eval(objects)
		b.Run(fmt.Sprintf("restricted/objects=%d", objects), func(b *testing.B) {
			env.RestrictDomain = true
			for i := 0; i < b.N; i++ {
				env.TS(e, now)
			}
		})
		b.Run(fmt.Sprintf("fulldomain/objects=%d", objects), func(b *testing.B) {
			env.RestrictDomain = false
			for i := 0; i < b.N; i++ {
				env.TS(e, now)
			}
		})
	}
}

// B4 — disjunction-only rules through the legacy type index vs the
// calculus-based support.
func BenchmarkLegacyVsCalculus(b *testing.B) {
	vocab := workload.Vocabulary(16)
	defs := workload.Rules(rand.New(rand.NewSource(5)), workload.RuleSetOptions{
		Rules: 100, Vocab: vocab, TypesPerRule: 3, Depth: 0,
	})
	b.Run("legacy", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s := rules.NewLegacySupport()
			for _, d := range defs {
				if err := s.Define(d.Name, d.Event); err != nil {
					b.Fatal(err)
				}
			}
			c := clock.New()
			base := event.NewBase()
			stream := workload.Stream(rand.New(rand.NewSource(6)), c, base, workload.StreamOptions{
				Blocks: 20, EventsPerBlock: 8, Objects: 16, Vocab: vocab,
			})
			for _, blk := range stream {
				s.NotifyArrivals(blk)
				for _, n := range s.CheckTriggered(c.Now()) {
					s.Consider(n)
				}
			}
		}
	})
	b.Run("calculus", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			c := clock.New()
			base := event.NewBase()
			s := rules.NewSupport(base, rules.Options{UseFilter: true})
			s.BeginTransaction(c.Now())
			for _, d := range defs {
				if err := s.Define(d); err != nil {
					b.Fatal(err)
				}
			}
			stream := workload.Stream(rand.New(rand.NewSource(6)), c, base, workload.StreamOptions{
				Blocks: 20, EventsPerBlock: 8, Objects: 16, Vocab: vocab,
			})
			workload.Drive(s, c, stream, true)
		}
	})
}

// B5 — end-to-end transactions across coupling and consumption modes.
func BenchmarkEngineEndToEnd(b *testing.B) {
	for _, cfg := range []bench.B5Config{
		{Coupling: rules.Immediate, Consumption: rules.Consuming},
		{Coupling: rules.Immediate, Consumption: rules.Preserving},
		{Coupling: rules.Deferred, Consumption: rules.Consuming},
		{Coupling: rules.Deferred, Consumption: rules.Preserving},
	} {
		b.Run(fmt.Sprintf("%s-%s", cfg.Coupling, cfg.Consumption), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				bench.RunB5(cfg, 10, 20, 5)
			}
		})
	}
}

// B6 — the formal ∃t' probe vs the boundary-only ablation.
func BenchmarkExistsProbe(b *testing.B) {
	for _, mode := range []struct {
		name string
		opts rules.Options
	}{
		{"formal", rules.Options{UseFilter: true}},
		{"boundary-only", rules.Options{UseFilter: true, BoundaryOnly: true}},
	} {
		b.Run(mode.name, func(b *testing.B) {
			vocab := workload.Vocabulary(6)
			r := rand.New(rand.NewSource(11))
			defs := make([]rules.Def, 40)
			for i := range defs {
				defs[i] = rules.Def{
					Name: fmt.Sprintf("r%03d", i),
					Event: calculus.Conj(
						calculus.P(vocab[r.Intn(len(vocab))]),
						calculus.Neg(calculus.P(vocab[r.Intn(len(vocab))]))),
					Priority: i,
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c := clock.New()
				base := event.NewBase()
				s := rules.NewSupport(base, mode.opts)
				s.BeginTransaction(c.Now())
				for _, d := range defs {
					if err := s.Define(d); err != nil {
						b.Fatal(err)
					}
				}
				stream := workload.Stream(rand.New(rand.NewSource(12)), c, base, workload.StreamOptions{
					Blocks: 20, EventsPerBlock: 4, Objects: 8, Vocab: vocab,
				})
				workload.Drive(s, c, stream, true)
			}
		})
	}
}

// B8 — trigger determination through the sequential reference support
// vs the sharded + incremental configuration.
func BenchmarkShardedSupport(b *testing.B) {
	vocab := workload.Vocabulary(32)
	r := rand.New(rand.NewSource(41))
	defs := make([]rules.Def, 1000)
	for i := range defs {
		defs[i] = rules.Def{
			Name: fmt.Sprintf("r%05d", i),
			Event: calculus.Conj(
				calculus.P(vocab[r.Intn(len(vocab))]),
				calculus.Neg(calculus.P(vocab[r.Intn(len(vocab))]))),
			Priority: i,
		}
	}
	for _, mode := range []struct {
		name string
		opts rules.Options
	}{
		{"sequential", rules.Options{UseFilter: true}},
		{"incremental", rules.Options{UseFilter: true, Incremental: true}},
		{"sharded-4", rules.Options{UseFilter: true, Incremental: true, Workers: 4}},
	} {
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				c := clock.New()
				base := event.NewBase()
				s := rules.NewSupport(base, mode.opts)
				s.BeginTransaction(c.Now())
				for _, d := range defs {
					if err := s.Define(d); err != nil {
						b.Fatal(err)
					}
				}
				stream := workload.Stream(rand.New(rand.NewSource(42)), c, base, workload.StreamOptions{
					Blocks: 20, EventsPerBlock: 12, Objects: 16, Vocab: vocab,
				})
				workload.Drive(s, c, stream, true)
			}
		})
	}
}

// B11 — shared trigger plans: the incremental per-rule sweep vs the
// interned DAG with memoized ts evaluation, on rule sets with forced
// subexpression overlap (chimera-bench -exp B11 prints the full table).
func BenchmarkSharedPlan(b *testing.B) {
	vocab := workload.Vocabulary(6)
	defs := workload.OverlapRules(rand.New(rand.NewSource(71)), workload.OverlapRuleSetOptions{
		Rules: 50, Vocab: vocab, Overlap: 4,
		FragmentsPerRule: 2, Depth: 3,
		Negation: true, Precedence: true, Conjunctive: true,
	})
	for _, mode := range []struct {
		name string
		opts rules.Options
	}{
		{"incremental", rules.Options{UseFilter: true, Incremental: true}},
		{"shared", rules.Options{UseFilter: true, Incremental: true, SharedPlan: true}},
		{"shared-memoOff", rules.Options{UseFilter: true, Incremental: true, SharedPlan: true, MemoOff: true}},
	} {
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				c := clock.New()
				base := event.NewBase()
				s := rules.NewSupport(base, mode.opts)
				s.BeginTransaction(c.Now())
				for _, d := range defs {
					if err := s.Define(d); err != nil {
						b.Fatal(err)
					}
				}
				stream := workload.Stream(rand.New(rand.NewSource(42)), c, base, workload.StreamOptions{
					Blocks: 30, EventsPerBlock: 8, Objects: 16, Vocab: vocab,
				})
				workload.Drive(s, c, stream, true)
			}
		})
	}
}

// Steady-state CheckTriggered on rules that never fire: after warmup
// the call recycles every buffer, so allocs/op must report 0 for all
// three evaluation modes (the test suite asserts this; the benchmark
// shows it alongside the per-call cost).
func BenchmarkCheckSteadyState(b *testing.B) {
	vocab := workload.Vocabulary(4)
	for _, mode := range []struct {
		name string
		opts rules.Options
	}{
		{"classic", rules.Options{UseFilter: true}},
		{"incremental", rules.Options{UseFilter: true, Incremental: true}},
		{"shared", rules.Options{UseFilter: true, SharedPlan: true}},
	} {
		b.Run(mode.name, func(b *testing.B) {
			c := clock.New()
			base := event.NewBase()
			s := rules.NewSupport(base, mode.opts)
			s.BeginTransaction(c.Now())
			for i := 0; i < 8; i++ {
				// Conjunction with an unseen type: probed, never fires.
				def := rules.Def{
					Name: fmt.Sprintf("r%02d", i),
					Event: calculus.Conj(
						calculus.P(vocab[i%len(vocab)]),
						calculus.P(event.Create("never"))),
					Priority: i,
				}
				if err := s.Define(def); err != nil {
					b.Fatal(err)
				}
			}
			r := rand.New(rand.NewSource(7))
			for i := 0; i < 64; i++ {
				if _, err := base.Append(vocab[r.Intn(len(vocab))], 1, c.Tick()); err != nil {
					b.Fatal(err)
				}
			}
			s.CheckTriggered(c.Now()) // warm the buffers
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.CheckTriggered(c.Now())
			}
		})
	}
}

// Figure 5 regeneration cost (the six sampled ts curves).
func BenchmarkFigure5Series(b *testing.B) {
	for i := 0; i < b.N; i++ {
		figures.Figure5()
	}
}

// Static optimization: compiling V(E) for a depth-5 expression.
func BenchmarkVariationCompile(b *testing.B) {
	r := rand.New(rand.NewSource(3))
	e := calculus.GenExpr(r, calculus.GenOptions{
		Types: calculus.DefaultVocabulary(), MaxDepth: 5,
		AllowNegation: true, AllowInstance: true, AllowPrecedence: true,
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		calculus.Compile(e)
	}
}

// Parser throughput on the paper's example rule.
func BenchmarkParseRule(b *testing.B) {
	src := `
define immediate checkStockQty for stock
events create
condition stock(S), occurred(create, S), S.quantity > S.maxquantity
action modify(stock.quantity, S, S.maxquantity)
end`
	for i := 0; i < b.N; i++ {
		if _, err := lang.ParseRule(src); err != nil {
			b.Fatal(err)
		}
	}
}

// End-to-end cost of the paper's quickstart through the public API.
func BenchmarkQuickstartTransaction(b *testing.B) {
	db := chimera.Open()
	chimera.MustLoad(db, `
class stock(name: string, quantity: integer, maxquantity: integer)
define immediate checkStockQty for stock
events create
condition stock(S), occurred(create, S), S.quantity > S.maxquantity
action modify(stock.quantity, S, S.maxquantity)
end`)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		err := db.Run(func(tx *chimera.Txn) error {
			_, err := tx.Create("stock", chimera.Values{
				"quantity": chimera.Int(99), "maxquantity": chimera.Int(40)})
			return err
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}
