module chimera

go 1.22
